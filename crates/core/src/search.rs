//! Algorithm 1: scoring candidate tables, optionally in parallel.
//!
//! Scoring runs off the lake's precomputed
//! [`TableDigest`](thetis_datalake::TableDigest)s: per table, one batched σ
//! kernel per distinct query entity fills a [`SigmaRows`] lattice, and the
//! Hungarian matrix, row aggregation and pruning upper bound all read from
//! it — the σ cache is consulted once per (query entity, distinct entity)
//! pair instead of once per cell, and the ranking stays bit-identical to
//! the raw row walk (see [`crate::mapping::score_matrix_digest`] and
//! [`crate::semrel::tuple_table_score_digest_detailed`] for why).
//!
//! Candidates are distributed over workers by **work stealing**: a shared
//! atomic cursor hands out fixed-size blocks ([`Schedule::block`]), so a
//! worker that drew the few giant tables simply claims fewer blocks while
//! the others drain the rest — no static chunk skew. The pruned scorer
//! additionally orders candidates by descending upper bound and seeds the
//! shared top-k floor from the `k` best bounds before the main loop.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use thetis_datalake::{DataLake, TableDigest, TableId};

use crate::informativeness::Informativeness;
use crate::query::Query;
use crate::semrel::RowAgg;
use crate::sigma::SigmaRows;
use crate::similarity::EntitySimilarity;
use crate::topk::TopK;

/// Work-stealing blocks claimed across all scoring passes.
static OBS_STEALS: thetis_obs::Counter = thetis_obs::Counter::new("core.sched_steals");
/// Candidates processed by scoring workers (one per steal-loop item).
static OBS_WORKER_TABLES: thetis_obs::Counter = thetis_obs::Counter::new("core.sched_tables");
/// Per-worker busy wall time (one record per worker drain), so
/// `nanos / count` is the mean worker occupancy of a scoring pass.
static OBS_WORKER_BUSY: thetis_obs::Span = thetis_obs::Span::new("core.worker_busy");
/// Panics caught during scoring (per-table isolation or a lost worker);
/// the query completes with partial results either way.
static OBS_WORKER_PANICS: thetis_obs::Counter = thetis_obs::Counter::new("core.worker_panics");

/// Timing breakdown of a scoring pass (reproduces the §7.3 "table scoring"
/// measurement: the share of time spent computing the mapping `μ_{T,Q}`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoreTimings {
    /// Nanoseconds spent in the Hungarian column-mapping step.
    pub mapping_nanos: u64,
    /// Hungarian column-mapping invocations (one per query tuple per
    /// scored table).
    pub mapping_count: u64,
    /// Nanoseconds spent aggregating row scores into per-tuple SemRel
    /// values (everything in the scoring loop that is not the mapping).
    pub agg_nanos: u64,
    /// Nanoseconds spent scoring tables in total (mapping, upper-bound
    /// computation, and row aggregation included).
    pub scoring_nanos: u64,
    /// Tables actually scored (tables without entity links are skipped).
    pub tables_scored: usize,
    /// Tables skipped because their relevance upper bound could not beat
    /// the running top-k floor.
    pub tables_pruned: usize,
    /// σ evaluations actually performed (cache misses when memoizing;
    /// every evaluation otherwise). Filled in by the engine from the
    /// query-scoped [`SimilarityCache`](crate::cache::SimilarityCache).
    pub sigma_computed: u64,
    /// σ lookups served from the query-scoped memo (always 0 when
    /// memoization is disabled).
    pub sigma_cached: u64,
    /// Candidates skipped because they carry no entity links (irrelevant
    /// by §4.2; includes every candidate when the query itself is empty).
    pub tables_unlinked: usize,
    /// Candidates whose scorer panicked: the panic was caught, the table's
    /// result dropped, and the pass continued (see `core.worker_panics`).
    pub tables_panicked: usize,
    /// Candidates never visited because the deadline expired first.
    pub tables_unscored: usize,
    /// Whether any scoring phase stopped early on an expired deadline.
    pub deadline_hit: bool,
}

impl ScoreTimings {
    /// Fraction of scoring time spent on the column mapping.
    pub fn mapping_fraction(&self) -> f64 {
        if self.scoring_nanos == 0 {
            0.0
        } else {
            self.mapping_nanos as f64 / self.scoring_nanos as f64
        }
    }

    /// Fraction of σ lookups served from the memo (0 when none happened).
    pub fn sigma_hit_rate(&self) -> f64 {
        let lookups = self.sigma_computed + self.sigma_cached;
        if lookups == 0 {
            0.0
        } else {
            self.sigma_cached as f64 / lookups as f64
        }
    }

    fn merge(&mut self, other: ScoreTimings) {
        self.mapping_nanos += other.mapping_nanos;
        self.mapping_count += other.mapping_count;
        self.agg_nanos += other.agg_nanos;
        self.scoring_nanos += other.scoring_nanos;
        self.tables_scored += other.tables_scored;
        self.tables_pruned += other.tables_pruned;
        self.sigma_computed += other.sigma_computed;
        self.sigma_cached += other.sigma_cached;
        self.tables_unlinked += other.tables_unlinked;
        self.tables_panicked += other.tables_panicked;
        self.tables_unscored += other.tables_unscored;
        self.deadline_hit |= other.deadline_hit;
    }
}

/// How a scoring pass is spread over worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Worker threads (at least 1).
    pub threads: usize,
    /// Candidates claimed per work-stealing block. Small blocks balance
    /// skewed table sizes better; large blocks amortize the shared-cursor
    /// atomics. The default suits lakes where a handful of tables dominate.
    pub block: usize,
    /// Sequential-fallback cutoff, per thread: workers are only spawned
    /// when `candidates ≥ threads × min_per_thread`, so a small candidate
    /// set never pays thread-spawn overhead for a few tables each.
    pub min_per_thread: usize,
}

impl Schedule {
    /// Default work-stealing block size.
    pub const DEFAULT_BLOCK: usize = 8;
    /// Default sequential-fallback cutoff per thread.
    pub const DEFAULT_MIN_PER_THREAD: usize = 16;

    /// A schedule over `threads` workers with default block size and
    /// cutoff.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            block: Self::DEFAULT_BLOCK,
            min_per_thread: Self::DEFAULT_MIN_PER_THREAD,
        }
    }

    /// The single-threaded schedule.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// Workers to actually spawn for `n` work items.
    fn workers_for(&self, n: usize) -> usize {
        let threads = self.threads.max(1);
        if threads == 1 || n < threads * self.min_per_thread.max(1) {
            1
        } else {
            threads
        }
    }
}

/// What a [`steal_blocks`] pass did, beyond the per-worker accumulators.
#[derive(Debug, Clone, Copy, Default)]
struct StealReport {
    /// Items the surviving workers report as processed. Items claimed by a
    /// lost worker (see `lost_workers`) are *not* counted, so
    /// `n - processed` is exactly the number of items with no result.
    processed: u64,
    /// Whether the pass stopped early because the deadline expired.
    deadline_hit: bool,
    /// Workers whose thread died outright (a panic that escaped the
    /// per-item isolation). Their accumulators are dropped.
    lost_workers: u64,
}

/// Runs `work` over `0..n` in blocks claimed from a shared atomic cursor.
///
/// Each worker builds its accumulator with `make(worker)`, then repeatedly
/// steals the next block until the cursor passes `n`; `work` returns how
/// many items it processed (for utilization accounting). When `deadline`
/// is set, every worker re-checks the clock before claiming a block and
/// stops cooperatively once it has passed — block claiming is the
/// cancellation granularity, so an in-flight block always completes. A
/// *verbose* trace receives one `sched.steal` event per claimed block
/// (summary traces skip the per-block stream); every active trace gets one
/// `sched.drain` event per worker (blocks, items, busy nanos), and one
/// `sched.deadline` event when the budget expires; the same utilization
/// lands on the `core.sched_*` / `core.worker_busy` obs series.
///
/// A worker thread that dies (its panic escaped `work`'s own isolation) is
/// absorbed: its accumulator is dropped, the loss is counted in the
/// report, and the remaining workers drain normally.
fn steal_blocks<R, M, F>(
    n: usize,
    sched: Schedule,
    deadline: Option<Instant>,
    trace: &thetis_obs::QueryTrace,
    make: M,
    work: F,
) -> (Vec<R>, StealReport)
where
    R: Send,
    M: Fn(usize) -> R + Sync,
    F: Fn(&mut R, std::ops::Range<usize>, usize) -> u64 + Sync,
{
    let workers = sched.workers_for(n);
    let block = sched.block.max(1);
    let cursor = AtomicUsize::new(0);
    let expired = AtomicBool::new(false);
    let worker_loop = |wid: usize| -> (R, u64) {
        let busy = Instant::now();
        let mut acc = make(wid);
        let mut blocks = 0u64;
        let mut items = 0u64;
        loop {
            if let Some(d) = deadline {
                if expired.load(Ordering::Relaxed) {
                    break;
                }
                if Instant::now() >= d {
                    if !expired.swap(true, Ordering::Relaxed) {
                        trace.record_with("sched.deadline", || {
                            thetis_obs::trace_attrs![
                                ("worker", wid),
                                ("claimed", cursor.load(Ordering::Relaxed).min(n)),
                                ("total", n),
                            ]
                        });
                    }
                    break;
                }
            }
            let start = cursor.fetch_add(block, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + block).min(n);
            blocks += 1;
            if trace.is_verbose() {
                trace.record(
                    "sched.steal",
                    thetis_obs::trace_attrs![
                        ("worker", wid),
                        ("start", start),
                        ("len", end - start),
                    ],
                );
            }
            items += work(&mut acc, start..end, wid);
        }
        let busy_nanos = busy.elapsed().as_nanos() as u64;
        trace.record_with("sched.drain", || {
            thetis_obs::trace_attrs![
                ("worker", wid),
                ("blocks", blocks),
                ("tables", items),
                ("busy_nanos", busy_nanos),
            ]
        });
        if thetis_obs::enabled() {
            OBS_STEALS.add(blocks);
            OBS_WORKER_TABLES.add(items);
            OBS_WORKER_BUSY.record_nanos(busy_nanos, 1);
        }
        (acc, items)
    };
    if workers == 1 {
        let (acc, items) = worker_loop(0);
        let report = StealReport {
            processed: items,
            deadline_hit: expired.load(Ordering::Relaxed),
            lost_workers: 0,
        };
        return (vec![acc], report);
    }
    std::thread::scope(|scope| {
        let worker_loop = &worker_loop;
        let handles: Vec<_> = (0..workers)
            .map(|wid| scope.spawn(move || worker_loop(wid)))
            .collect();
        let mut accs = Vec::with_capacity(workers);
        let mut report = StealReport::default();
        for (wid, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((acc, items)) => {
                    accs.push(acc);
                    report.processed += items;
                }
                Err(_) => {
                    report.lost_workers += 1;
                    if thetis_obs::enabled() {
                        OBS_WORKER_PANICS.inc();
                    }
                    trace.record_with("sched.panic", || {
                        thetis_obs::trace_attrs![("worker", wid), ("scope", "worker")]
                    });
                }
            }
        }
        report.deadline_hit = expired.load(Ordering::Relaxed);
        (accs, report)
    })
}

/// The panic payload's message, when it carries one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scores one table under panic isolation: a panicking scorer is caught,
/// counted (`tables_panicked`, `core.worker_panics`, a `sched.panic` trace
/// event naming the table), and reported as `None` with its partial
/// timings dropped, so shared accounting never sees a half-updated table.
/// A clean `None` (no entity links) is counted as `tables_unlinked`.
#[allow(clippy::too_many_arguments)]
fn score_table_isolated(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
    trace: &thetis_obs::QueryTrace,
    wid: usize,
) -> Option<f64> {
    let mut local = ScoreTimings::default();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        score_table_traced(query, lake, table_id, sim, inform, agg, &mut local, trace)
    }));
    match outcome {
        Ok(score) => {
            timings.merge(local);
            if score.is_none() {
                timings.tables_unlinked += 1;
            }
            score
        }
        Err(payload) => {
            timings.tables_panicked += 1;
            if thetis_obs::enabled() {
                OBS_WORKER_PANICS.inc();
            }
            trace.record_with("sched.panic", || {
                thetis_obs::trace_attrs![
                    ("worker", wid),
                    ("table", table_id.0),
                    ("msg", panic_message(payload.as_ref())),
                ]
            });
            None
        }
    }
}

/// Resolves the digest of `table_id`: the lake's precomputed one when
/// *this table* is fresh (staleness is tracked per table, so one mutated
/// table no longer forces ad-hoc digests for the whole lake), otherwise an
/// ad-hoc build stored in `slot` (one-off scoring of a mutated table must
/// not panic). `None` means the table has no entity links and is
/// irrelevant by §4.2.
fn resolve_digest<'a>(
    lake: &'a DataLake,
    table_id: TableId,
    slot: &'a mut Option<TableDigest>,
) -> Option<&'a TableDigest> {
    if lake.digest_fresh(table_id) {
        lake.digest(table_id)
    } else {
        *slot = TableDigest::build(lake.table(table_id));
        slot.as_ref()
    }
}

/// Scores one table against the whole query (lines 3–15 of Algorithm 1):
/// per query tuple, compute the column mapping and the aggregated row
/// score, then average the per-tuple SemRel scores.
///
/// Returns `None` for tables with no entity links (no row can have a
/// relevant mapping, so the table is irrelevant by §4.2).
pub fn score_table(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
) -> Option<f64> {
    score_table_traced(
        query,
        lake,
        table_id,
        sim,
        inform,
        agg,
        timings,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_table`] with a flight recorder attached. An active trace receives,
/// per query tuple, a `hungarian.map` event (the chosen tuple→column mapping
/// with each pair's column-relevance) and a `semrel.tuple` event (the
/// aggregated per-entity similarities `x_i` and the tuple's Eq. 3 score),
/// plus one `score.table` phase for the whole table. An inactive trace costs
/// one branch per tuple.
#[allow(clippy::too_many_arguments)]
pub fn score_table_traced(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
    trace: &thetis_obs::QueryTrace,
) -> Option<f64> {
    if query.is_empty() {
        return None;
    }
    let mut slot = None;
    let digest = resolve_digest(lake, table_id, &mut slot)?;
    Some(score_digest(
        query, table_id, digest, sim, inform, agg, timings, trace,
    ))
}

/// The digest-driven scoring kernel behind [`score_table_traced`].
#[allow(clippy::too_many_arguments)]
fn score_digest(
    query: &Query,
    table_id: TableId,
    digest: &TableDigest,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
    timings: &mut ScoreTimings,
    trace: &thetis_obs::QueryTrace,
) -> f64 {
    let start = Instant::now();
    let sigma = SigmaRows::build(query, digest, sim);
    let mut sum = 0.0;
    for (ti, tuple) in query.tuples.iter().enumerate() {
        let map_start = Instant::now();
        let (mapping, relevance) =
            crate::mapping::map_tuple_to_columns_digest_detailed(tuple, digest, &sigma);
        let agg_start = Instant::now();
        timings.mapping_nanos += agg_start.duration_since(map_start).as_nanos() as u64;
        timings.mapping_count += 1;
        if trace.is_verbose() {
            trace.record(
                "hungarian.map",
                thetis_obs::trace_attrs![
                    ("table", table_id.0),
                    ("tuple", ti),
                    ("mapping", render_mapping(&mapping.columns)),
                    ("relevance", render_f64_list(&relevance)),
                ],
            );
        }
        let (tuple_score, xs) = crate::semrel::tuple_table_score_digest_detailed(
            tuple, digest, &mapping, &sigma, inform, agg,
        );
        if trace.is_verbose() {
            trace.record(
                "semrel.tuple",
                thetis_obs::trace_attrs![
                    ("table", table_id.0),
                    ("tuple", ti),
                    ("x", render_f64_list(&xs)),
                    ("score", tuple_score),
                ],
            );
        }
        sum += tuple_score;
        timings.agg_nanos += agg_start.elapsed().as_nanos() as u64;
    }
    timings.scoring_nanos += start.elapsed().as_nanos() as u64;
    timings.tables_scored += 1;
    let score = sum / query.len() as f64;
    trace.record_phase_with("score.table", start, || {
        thetis_obs::trace_attrs![("table", table_id.0), ("score", score)]
    });
    score
}

/// The mapping `τ` as a compact string, e.g. `"0→2,1→—"`.
fn render_mapping(columns: &[Option<usize>]) -> String {
    let mut out = String::new();
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match c {
            Some(j) => {
                out.push_str(&i.to_string());
                out.push('→');
                out.push_str(&j.to_string());
            }
            None => {
                out.push_str(&i.to_string());
                out.push_str("→—");
            }
        }
    }
    out
}

/// A float vector as a compact comma list, e.g. `"1.0000,0.9500"`.
fn render_f64_list(xs: &[f64]) -> String {
    let mut out = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{x:.4}"));
    }
    out
}

/// An upper bound on [`score_table`] for the same arguments, cheap enough
/// to decide whether the Hungarian mapping and row aggregation are worth
/// running at all.
///
/// For every query entity `e_i` the bound takes
/// `x̄_i = max_{ē ∈ T} σ(e_i, ē)` over the table's *distinct* entities
/// (read straight from the digest's σ rows). Any real mapping aggregates σ
/// values drawn from that same entity pool, so `x_i ≤ x̄_i` under both
/// [`RowAgg::Max`] and [`RowAgg::Avg`], and Eq. 2–3 are monotone in each
/// `x_i` — hence `score ≤ bound`. When `sim` memoizes (see
/// [`CachedSimilarity`](crate::cache::CachedSimilarity)) the σ batch
/// computed here pre-seeds the cache for the full scoring pass, so an
/// unpruned table pays for the bound almost nothing.
///
/// Returns `None` exactly when [`score_table`] would (no entity links or an
/// empty query).
pub fn upper_bound_score(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
) -> Option<f64> {
    if query.is_empty() {
        return None;
    }
    let mut slot = None;
    let digest = resolve_digest(lake, table_id, &mut slot)?;
    let sigma = SigmaRows::build(query, digest, sim);
    let best: Vec<(thetis_kg::EntityId, f64)> = sigma
        .entities()
        .iter()
        .map(|&e| (e, sigma.bound_of(e)))
        .collect();
    let lookup = |e: thetis_kg::EntityId| -> f64 {
        best.iter()
            .find(|&&(x, _)| x == e)
            .expect("tuple entity missing from σ rows")
            .1
    };
    let mut sum = 0.0;
    for tuple in &query.tuples {
        let x: Vec<f64> = tuple.iter().map(|&e| lookup(e)).collect();
        sum += crate::semrel::distance_score(tuple, &x, inform);
    }
    Some(sum / query.len() as f64)
}

/// Scores `candidates` over the schedule's workers and returns all
/// `(table, score)` pairs (unsorted) plus merged timings.
pub fn score_candidates(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    sched: Schedule,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    score_candidates_traced(
        query,
        lake,
        candidates,
        sim,
        inform,
        agg,
        sched,
        None,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_candidates`] with a flight recorder attached; the trace handle is
/// shared across the scoring workers (its event buffer is mutex-guarded and
/// events are time-ordered on export). When `deadline` is set the pass
/// stops claiming work once it expires and reports the unvisited
/// candidates in `tables_unscored` (`deadline_hit` set).
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_traced(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    sched: Schedule,
    deadline: Option<Instant>,
    trace: &thetis_obs::QueryTrace,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    if candidates.is_empty() {
        return (Vec::new(), ScoreTimings::default());
    }
    let (results, report) = steal_blocks(
        candidates.len(),
        sched,
        deadline,
        trace,
        |_| (Vec::<(TableId, f64)>::new(), ScoreTimings::default()),
        |acc, range, wid| {
            let mut done = 0u64;
            for &tid in &candidates[range] {
                if let Some(s) =
                    score_table_isolated(query, lake, tid, sim, inform, agg, &mut acc.1, trace, wid)
                {
                    acc.0.push((tid, s));
                }
                done += 1;
            }
            done
        },
    );
    let mut all = Vec::with_capacity(candidates.len());
    let mut timings = ScoreTimings::default();
    for (part, t) in results {
        all.extend(part);
        timings.merge(t);
    }
    // Items never visited — deadline-skipped or claimed by a lost worker —
    // have no disposition yet; they are the unscored remainder.
    let accounted = timings.tables_scored + timings.tables_unlinked + timings.tables_panicked;
    timings.tables_unscored += candidates.len().saturating_sub(accounted);
    timings.deadline_hit |= report.deadline_hit;
    (all, timings)
}

/// Like [`score_candidates`], but skips the Hungarian mapping and row
/// aggregation for tables whose [`upper_bound_score`] falls strictly below
/// the running top-`k` floor, and returns only each worker's local top-`k`
/// survivors (at most `k · (workers + 1)` pairs).
///
/// The pass runs in four phases: (1) upper bounds for every candidate,
/// work-stolen across workers (the batched σ values land in the memo and
/// are reused by the scoring phase); (2) candidates sort by descending
/// bound — ties by ascending id — so the strongest tables are scored first
/// and the floor tightens as early as possible; (3) the `k` highest-bound
/// candidates are scored outright, seeding the floor at the best possible
/// value before any prune decision; (4) the remainder is work-stolen with
/// the shared atomic floor.
///
/// The floor is shared across workers through an atomic: it is the best
/// k-th-highest score any worker has seen so far, which is always ≤ the
/// final k-th-highest score, so a table pruned here — `score ≤ bound <
/// floor` — can never enter the final top-k, not even on a tie (ties enter
/// only at equal score). The ranking is therefore bit-identical to the
/// exhaustive path regardless of thread count or timing; only
/// `tables_pruned` may vary between runs.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_pruned(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    sched: Schedule,
    k: usize,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    score_candidates_pruned_traced(
        query,
        lake,
        candidates,
        sim,
        inform,
        agg,
        sched,
        k,
        None,
        &thetis_obs::QueryTrace::disabled(),
    )
}

/// [`score_candidates_pruned`] with a flight recorder attached: a verbose
/// trace additionally receives one `prune.skip` event per pruned table (its
/// upper bound and the floor that killed it) and a `prune.floor` event each
/// time the shared floor rises (the floor trajectory — when pruning became
/// effective); scored tables leave their `score.table` / `hungarian.map` /
/// `semrel.tuple` events via [`score_table_traced`].
///
/// When `deadline` is set, every phase — bounding, floor seeding, and the
/// main loop — re-checks the clock at its claim granularity and stops
/// early; candidates the expired phases never visited are reported in
/// `tables_unscored`. The shared floor is seeded only from tables that were
/// actually scored, so every prune decision in a partial run is one the
/// full run would also have made: scored tables keep bit-identical scores.
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_pruned_traced(
    query: &Query,
    lake: &DataLake,
    candidates: &[TableId],
    sim: &(dyn EntitySimilarity + Sync),
    inform: &Informativeness,
    agg: RowAgg,
    sched: Schedule,
    k: usize,
    deadline: Option<Instant>,
    trace: &thetis_obs::QueryTrace,
) -> (Vec<(TableId, f64)>, ScoreTimings) {
    if candidates.is_empty() || k == 0 {
        return (Vec::new(), ScoreTimings::default());
    }

    // Phase 1: upper bounds for every candidate, under the same per-table
    // panic isolation as scoring — a table whose σ kernel panics while
    // bounding is dropped (counted in `tables_panicked`) instead of taking
    // the whole pass down.
    let (bound_results, bound_report) = steal_blocks(
        candidates.len(),
        sched,
        deadline,
        trace,
        |_| (Vec::<(TableId, f64)>::new(), ScoreTimings::default()),
        |acc, range, wid| {
            let mut done = 0u64;
            for &tid in &candidates[range] {
                let start = Instant::now();
                let bound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    upper_bound_score(query, lake, tid, sim, inform)
                }));
                acc.1.scoring_nanos += start.elapsed().as_nanos() as u64;
                match bound {
                    Ok(Some(b)) => acc.0.push((tid, b)),
                    Ok(None) => acc.1.tables_unlinked += 1,
                    Err(payload) => {
                        acc.1.tables_panicked += 1;
                        if thetis_obs::enabled() {
                            OBS_WORKER_PANICS.inc();
                        }
                        trace.record_with("sched.panic", || {
                            thetis_obs::trace_attrs![
                                ("worker", wid),
                                ("table", tid.0),
                                ("msg", panic_message(payload.as_ref())),
                            ]
                        });
                    }
                }
                done += 1;
            }
            done
        },
    );
    let mut timings = ScoreTimings::default();
    let mut bounded: Vec<(TableId, f64)> = Vec::with_capacity(candidates.len());
    for (part, t) in bound_results {
        bounded.extend(part);
        timings.merge(t);
    }
    // Candidates the bound phase never visited (deadline expiry or a lost
    // worker) get no bound and no later phase — they are unscored.
    let bound_accounted = bounded.len() + timings.tables_unlinked + timings.tables_panicked;
    timings.tables_unscored += candidates.len().saturating_sub(bound_accounted);
    timings.deadline_hit |= bound_report.deadline_hit;

    // Phase 2: strongest bounds first (ties by ascending id, so the visit
    // order is deterministic regardless of which worker bounded what).
    bounded.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // f64 bits compare like integers for non-negative floats, and SemRel
    // scores are always positive, so `fetch_max` on the bit pattern keeps
    // the floor monotonically tightening without a lock.
    let floor_bits = AtomicU64::new(0.0f64.to_bits());
    let raise_floor = |top: &TopK<TableId>, wid: usize| {
        if top.len() == k {
            let min = top.min_score().expect("full top-k has a minimum");
            let bits = min.to_bits();
            let prev = floor_bits.fetch_max(bits, Ordering::Relaxed);
            if bits > prev {
                trace.record_with("prune.floor", || {
                    thetis_obs::trace_attrs![("worker", wid), ("floor", min)]
                });
            }
        }
    };

    // Phase 3: seed the floor by fully scoring the k highest-bound
    // candidates — the floor starts at the tightest value any order could
    // have produced after k tables, so phase 4 prunes from its first item.
    // The deadline is re-checked before every seed table; seeds never
    // visited join the unscored remainder.
    let seed_n = bounded.len().min(k);
    let mut seed_top: TopK<TableId> = TopK::new(k);
    let mut seeds_visited = 0usize;
    for &(tid, _) in &bounded[..seed_n] {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                timings.deadline_hit = true;
                break;
            }
        }
        seeds_visited += 1;
        if let Some(s) =
            score_table_isolated(query, lake, tid, sim, inform, agg, &mut timings, trace, 0)
        {
            seed_top.push(tid, s);
        }
    }
    timings.tables_unscored += seed_n - seeds_visited;
    raise_floor(&seed_top, 0);

    // Phase 4: the remainder, strongest first, under work stealing.
    let rest = &bounded[seed_n..];
    let (main_results, main_report) = steal_blocks(
        rest.len(),
        sched,
        deadline,
        trace,
        |_| (TopK::<TableId>::new(k), ScoreTimings::default()),
        |acc, range, wid| {
            let mut done = 0u64;
            for &(tid, bound) in &rest[range] {
                done += 1;
                let floor = f64::from_bits(floor_bits.load(Ordering::Relaxed));
                if bound < floor {
                    acc.1.tables_pruned += 1;
                    if trace.is_verbose() {
                        trace.record_with("prune.skip", || {
                            thetis_obs::trace_attrs![
                                ("table", tid.0),
                                ("bound", bound),
                                ("floor", floor),
                            ]
                        });
                    }
                    continue;
                }
                if let Some(s) =
                    score_table_isolated(query, lake, tid, sim, inform, agg, &mut acc.1, trace, wid)
                {
                    acc.0.push(tid, s);
                    raise_floor(&acc.0, wid);
                }
            }
            done
        },
    );

    let mut all = seed_top.into_sorted();
    let mut main_timings = ScoreTimings::default();
    for (top, t) in main_results {
        all.extend(top.into_sorted());
        main_timings.merge(t);
    }
    // Phase-4 items that were never visited (deadline or lost worker): no
    // prune decision, no score — unscored.
    let main_accounted = main_timings.tables_scored
        + main_timings.tables_pruned
        + main_timings.tables_unlinked
        + main_timings.tables_panicked;
    main_timings.tables_unscored += rest.len().saturating_sub(main_accounted);
    main_timings.deadline_hit |= main_report.deadline_hit;
    timings.merge(main_timings);
    (all, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let players: Vec<EntityId> = (0..6)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let g = b.freeze();
        let mk = |es: &[EntityId]| {
            let mut t = Table::new("t", vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let mut unlinked = Table::new("u", vec!["c".into()]);
        unlinked.push_row(vec![CellValue::Text("plain".into())]);
        let lake = DataLake::from_tables(vec![mk(&players[0..2]), mk(&players[2..4]), unlinked]);
        (g, lake, players)
    }

    #[test]
    fn exact_match_table_ranks_highest() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        let s0 = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        let s1 = score_table(&q, &lake, TableId(1), &sim, &inform, RowAgg::Max, &mut t).unwrap();
        assert_eq!(s0, 1.0);
        assert!(s1 < s0 && s1 > 0.0);
    }

    #[test]
    fn unlinked_tables_are_skipped() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        assert!(score_table(&q, &lake, TableId(2), &sim, &inform, RowAgg::Max, &mut t).is_none());
        assert_eq!(t.tables_scored, 0);
    }

    #[test]
    fn stale_lake_scores_through_an_adhoc_digest() {
        let (g, mut lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let mut t = ScoreTimings::default();
        let fresh = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t);
        // Touching another table through `table_mut` marks only *it* stale;
        // scoring the stale table falls back to an ad-hoc digest instead of
        // panicking, while fresh tables keep using their stored digest.
        lake.table_mut(TableId(1))
            .push_row(vec![CellValue::LinkedEntity {
                mention: "m".into(),
                entity: players[5],
            }]);
        assert!(!lake.digest_fresh(TableId(1)));
        assert!(lake.digest_fresh(TableId(0)), "staleness is per table");
        let unaffected = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t);
        assert_eq!(fresh, unaffected);
        // The stale table itself scores without panicking.
        let _ = score_table(&q, &lake, TableId(1), &sim, &inform, RowAgg::Max, &mut t);
        // Bulk mutation stales everything; scoring still must not panic.
        let _ = lake.tables_mut();
        assert!(!lake.digests_fresh());
        let stale = score_table(&q, &lake, TableId(0), &sim, &inform, RowAgg::Max, &mut t);
        assert_eq!(fresh, stale);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (mut seq, _) = score_candidates(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
        );
        let (mut par, _) = score_candidates(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::with_threads(4),
        );
        seq.sort_by_key(|&(t, _)| t);
        par.sort_by_key(|&(t, _)| t);
        assert_eq!(seq, par);
    }

    #[test]
    fn work_stealing_covers_every_candidate_once() {
        // Force real workers with a tiny block: every candidate must be
        // scored exactly once no matter how blocks interleave.
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).flat_map(|_| (0..3).map(TableId)).collect();
        let sched = Schedule {
            threads: 3,
            block: 1,
            min_per_thread: 1,
        };
        let (scored, timings) =
            score_candidates(&q, &lake, &cands, &sim, &inform, RowAgg::Max, sched);
        // 9 visits, 3 of them the unlinked table.
        assert_eq!(scored.len(), 6);
        assert_eq!(timings.tables_scored, 6);
    }

    #[test]
    fn timings_accumulate() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (_, timings) = score_candidates(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
        );
        assert_eq!(timings.tables_scored, 2);
        assert!(timings.scoring_nanos >= timings.mapping_nanos);
        assert!(timings.mapping_fraction() <= 1.0);
        assert_eq!(timings.sigma_hit_rate(), 0.0);
    }

    #[test]
    fn upper_bound_dominates_the_real_score() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::new(vec![vec![players[0]], vec![players[2], players[4]]]);
        for tid in [TableId(0), TableId(1)] {
            let bound = upper_bound_score(&q, &lake, tid, &sim, &inform).unwrap();
            for agg in [RowAgg::Max, RowAgg::Avg] {
                let mut t = ScoreTimings::default();
                let s = score_table(&q, &lake, tid, &sim, &inform, agg, &mut t).unwrap();
                assert!(s <= bound + 1e-12, "{s} > {bound} for {tid:?} {agg:?}");
            }
        }
        assert!(upper_bound_score(&q, &lake, TableId(2), &sim, &inform).is_none());
    }

    #[test]
    fn pruned_search_keeps_the_same_top_k() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (exhaustive, _) = score_candidates(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
        );
        let (survivors, timings) = score_candidates_pruned(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
            1,
        );
        let mut top = crate::topk::TopK::new(1);
        for &(t, s) in &exhaustive {
            top.push(t, s);
        }
        assert_eq!(survivors, top.into_sorted());
        assert_eq!(timings.tables_scored + timings.tables_pruned, 2);
    }

    #[test]
    fn pruning_actually_skips_dominated_tables() {
        // Table 0 holds the exact query entity (score 1.0, the maximum);
        // with k = 1 it has the highest bound, seeds the floor at 1.0, and
        // every other table gets pruned.
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (survivors, timings) = score_candidates_pruned(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
            1,
        );
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].0, TableId(0));
        assert_eq!(timings.tables_scored, 1);
        assert_eq!(timings.tables_pruned, 1);
    }

    #[test]
    fn traced_scoring_matches_untraced_and_records_provenance() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();

        let (plain, _) = score_candidates_pruned(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
            1,
        );
        let trace = thetis_obs::QueryTrace::forced(11);
        let (traced, _) = score_candidates_pruned_traced(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
            1,
            None,
            &trace,
        );
        assert_eq!(plain, traced, "tracing must not perturb the ranking");

        let events = trace.events();
        let maps: Vec<_> = events
            .iter()
            .filter(|e| e.name == "hungarian.map")
            .collect();
        assert!(!maps.is_empty());
        assert_eq!(maps[0].attr_str("mapping"), Some("0→0"));
        let tuples: Vec<_> = events.iter().filter(|e| e.name == "semrel.tuple").collect();
        assert!(!tuples.is_empty());
        assert!(tuples[0].attr_f64("score").is_some());
        let skips: Vec<_> = events.iter().filter(|e| e.name == "prune.skip").collect();
        assert_eq!(skips.len(), 1, "table 1 is dominated and must be pruned");
        assert!(skips[0].attr_f64("bound").unwrap() < skips[0].attr_f64("floor").unwrap());
        let scored: Vec<_> = events.iter().filter(|e| e.name == "score.table").collect();
        assert_eq!(scored.len(), 1);
        assert_eq!(scored[0].attr_f64("score"), Some(plain[0].1));
        // The floor trajectory: seeding the floor from the best-bound table
        // is recorded before any prune decision.
        let floors: Vec<_> = events.iter().filter(|e| e.name == "prune.floor").collect();
        assert_eq!(floors.len(), 1);
        assert_eq!(floors[0].attr_f64("floor"), Some(plain[0].1));
        // Scheduler provenance: every worker drains exactly once per phase.
        let drains: Vec<_> = events.iter().filter(|e| e.name == "sched.drain").collect();
        assert_eq!(drains.len(), 2, "one bound phase + one scoring phase");
        assert!(events.iter().any(|e| e.name == "sched.steal"));
    }

    #[test]
    fn pruned_k_zero_returns_nothing() {
        let (g, lake, players) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0]]);
        let cands: Vec<TableId> = (0..3).map(TableId).collect();
        let (survivors, _) = score_candidates_pruned(
            &q,
            &lake,
            &cands,
            &sim,
            &inform,
            RowAgg::Max,
            Schedule::sequential(),
            0,
        );
        assert!(survivors.is_empty());
    }
}
