//! The SemRel relevance score (§4.1, §5.2 — Eq. 1–3).
//!
//! A target tuple is mapped to a point `p_T = ⟨x_1, ..., x_m⟩` in `[0,1]^m`
//! (one dimension per query entity, `x_i = σ(e_i, μ(e_i))`, 0 when
//! unmapped); relevance is the informativeness-weighted Euclidean distance
//! from the perfect match `⟨1, ..., 1⟩` converted into a similarity:
//!
//! ```text
//! D_I(p_Q, p_T) = sqrt( Σ_i I(e_i) · (1 − x_i)² )        (Eq. 2)
//! SemRel(t_Q, t_T) = 1 / (D_I + 1)                        (Eq. 3)
//! ```
//!
//! For a whole table, per-row scores are aggregated per query entity with
//! either the maximum or the average ([`RowAgg`]; the paper finds max up to
//! 5× better, which our ablation experiment reproduces), and the final
//! query score averages over query tuples (Eq. 1, `SemRel_MAX`).

use thetis_datalake::{Table, TableDigest};

use crate::hungarian::max_assignment;
use crate::informativeness::Informativeness;
use crate::mapping::ColumnMapping;
use crate::query::EntityTuple;
use crate::sigma::SigmaRows;
use crate::similarity::EntitySimilarity;

/// How per-row similarity scores are aggregated across table rows
/// (Algorithm 1, line 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowAgg {
    /// Maximum similarity over rows — amplifies the best-matching tuple.
    #[default]
    Max,
    /// Average similarity over rows.
    Avg,
}

/// Converts per-query-entity aggregated similarities `x_i` into the SemRel
/// score via the weighted distance of Eq. 2–3.
pub fn distance_score(tuple: &EntityTuple, x: &[f64], inform: &Informativeness) -> f64 {
    debug_assert_eq!(tuple.len(), x.len());
    let mut sum = 0.0;
    for (&e, &xi) in tuple.iter().zip(x) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&xi), "x_i out of range: {xi}");
        let d = 1.0 - xi;
        sum += inform.weight(e) * d * d;
    }
    1.0 / (sum.sqrt() + 1.0)
}

/// Scores one query tuple against a whole table, given the column mapping
/// `τ` (lines 6–14 of Algorithm 1).
pub fn tuple_table_score(
    tuple: &EntityTuple,
    table: &Table,
    mapping: &ColumnMapping,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
) -> f64 {
    tuple_table_score_detailed(tuple, table, mapping, sim, inform, agg).0
}

/// [`tuple_table_score`] keeping the intermediate state: returns the score
/// together with the per-query-entity aggregated similarities
/// `⟨x_1, ..., x_m⟩` that entered Eq. 2 (the coordinates of the tuple's
/// point in the SemRel space — what a flight recorder or explanation wants).
pub fn tuple_table_score_detailed(
    tuple: &EntityTuple,
    table: &Table,
    mapping: &ColumnMapping,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
    agg: RowAgg,
) -> (f64, Vec<f64>) {
    let m = tuple.len();
    let mut acc = vec![0.0f64; m];
    let n_rows = table.n_rows();
    for row in table.rows() {
        for (i, &e) in tuple.iter().enumerate() {
            let s = match mapping.columns[i] {
                Some(col) => match row[col].entity() {
                    Some(target) => sim.sim(e, target),
                    None => 0.0,
                },
                None => 0.0,
            };
            match agg {
                RowAgg::Max => {
                    if s > acc[i] {
                        acc[i] = s;
                    }
                }
                RowAgg::Avg => acc[i] += s,
            }
        }
    }
    if agg == RowAgg::Avg && n_rows > 0 {
        for a in &mut acc {
            *a /= n_rows as f64;
        }
    }
    let score = distance_score(tuple, &acc, inform);
    (score, acc)
}

/// [`tuple_table_score_detailed`] over a table digest and precomputed σ
/// rows — bit-identical output without touching raw rows.
///
/// [`RowAgg::Max`] folds over the mapped column's *distinct* entities (the
/// maximum of a multiset ignores multiplicity). [`RowAgg::Avg`] replays the
/// mapped column's linked cells in row order — the digest stores them in
/// exactly the order the raw walk visits them, and the unlinked cells the
/// raw walk adds contribute `+0.0`, which is a bitwise no-op on the
/// non-negative accumulator — then divides by the full row count.
pub fn tuple_table_score_digest_detailed(
    tuple: &EntityTuple,
    digest: &TableDigest,
    mapping: &ColumnMapping,
    sigma: &SigmaRows,
    inform: &Informativeness,
    agg: RowAgg,
) -> (f64, Vec<f64>) {
    let mut acc = vec![0.0f64; tuple.len()];
    for (i, &e) in tuple.iter().enumerate() {
        let Some(col) = mapping.columns[i] else {
            continue;
        };
        let col = &digest.columns[col];
        let row = sigma.row(e);
        match agg {
            RowAgg::Max => {
                let mut best = 0.0f64;
                for &idx in &col.entities {
                    let s = row[idx as usize];
                    if s > best {
                        best = s;
                    }
                }
                acc[i] = best;
            }
            RowAgg::Avg => {
                let mut sum = 0.0f64;
                for &idx in &col.cells {
                    sum += row[idx as usize];
                }
                acc[i] = sum;
            }
        }
    }
    if agg == RowAgg::Avg && digest.n_rows > 0 {
        for a in &mut acc {
            *a /= digest.n_rows as f64;
        }
    }
    let score = distance_score(tuple, &acc, inform);
    (score, acc)
}

/// SemRel between two entity tuples (§4.1): the target tuple is treated as
/// a one-row table and the relevant mapping `μ` is the injective assignment
/// maximizing the summed similarity.
pub fn tuple_tuple_semrel(
    query: &EntityTuple,
    target: &EntityTuple,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
) -> f64 {
    let matrix: Vec<Vec<f64>> = query
        .iter()
        .map(|&eq| target.iter().map(|&et| sim.sim(eq, et)).collect())
        .collect();
    let (assign, _) = max_assignment(&matrix);
    let x: Vec<f64> = assign
        .iter()
        .enumerate()
        .map(|(i, a)| a.map_or(0.0, |j| matrix[i][j]))
        .collect();
    distance_score(query, &x, inform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::CellValue;
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    fn graph() -> (KnowledgeGraph, Vec<EntityId>, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let t = b.add_type("Team", Some(thing));
        let players = (0..3)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let teams = (0..3)
            .map(|i| b.add_entity(&format!("t{i}"), vec![t]))
            .collect();
        (b.freeze(), players, teams)
    }

    #[test]
    fn perfect_match_scores_one() {
        let (g, players, _) = graph();
        let sim = TypeJaccard::new(&g);
        let q = vec![players[0]];
        let s = tuple_tuple_semrel(&q, &q, &sim, &Informativeness::uniform());
        assert_eq!(s, 1.0);
    }

    #[test]
    fn exact_beats_related_beats_unrelated() {
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = vec![players[0], teams[0]];
        let exact = tuple_tuple_semrel(&q, &vec![players[0], teams[0]], &sim, &inform);
        let related = tuple_tuple_semrel(&q, &vec![players[1], teams[1]], &sim, &inform);
        let partial = tuple_tuple_semrel(&q, &vec![players[0]], &sim, &inform);
        assert!(exact > related, "{exact} vs {related}");
        assert!(exact > partial, "{exact} vs {partial}");
        assert!(related > 0.0 && partial > 0.0);
    }

    #[test]
    fn asymmetry_favors_smaller_query() {
        // t2 ⊂ t1: SemRel(t1, t2) ≤ SemRel(t2, t1) (§4.1 consistency).
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let t1 = vec![players[0], teams[0]];
        let t2 = vec![teams[0]];
        let big_to_small = tuple_tuple_semrel(&t1, &t2, &sim, &inform);
        let small_to_big = tuple_tuple_semrel(&t2, &t1, &sim, &inform);
        assert!(big_to_small <= small_to_big);
        assert_eq!(small_to_big, 1.0);
    }

    fn one_col_table(entities: &[EntityId]) -> Table {
        let mut t = Table::new("t", vec!["c".into()]);
        for &e in entities {
            t.push_row(vec![CellValue::LinkedEntity {
                mention: "m".into(),
                entity: e,
            }]);
        }
        t
    }

    #[test]
    fn max_agg_amplifies_best_row() {
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        // Table rows: the exact player + two teams (poor matches).
        let table = one_col_table(&[players[0], teams[0], teams[1]]);
        let mapping = ColumnMapping {
            columns: vec![Some(0)],
        };
        let q = vec![players[0]];
        let max_s = tuple_table_score(&q, &table, &mapping, &sim, &inform, RowAgg::Max);
        let avg_s = tuple_table_score(&q, &table, &mapping, &sim, &inform, RowAgg::Avg);
        assert_eq!(max_s, 1.0); // best row is the exact match
        assert!(avg_s < max_s);
    }

    #[test]
    fn digest_tuple_score_is_bit_identical_to_raw() {
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        // A table with an unlinked row and a mixed column, the shapes the
        // digest compresses away.
        let mut table = Table::new("t", vec!["a".into(), "b".into()]);
        let link = |e: EntityId| CellValue::LinkedEntity {
            mention: "m".into(),
            entity: e,
        };
        table.push_row(vec![link(players[0]), link(teams[0])]);
        table.push_row(vec![CellValue::Text("x".into()), link(teams[1])]);
        table.push_row(vec![CellValue::Null, CellValue::Null]);
        table.push_row(vec![link(players[1]), CellValue::Text("y".into())]);
        let digest = thetis_datalake::TableDigest::build(&table).unwrap();

        let tuple = vec![players[0], teams[1]];
        let query = crate::query::Query::single(tuple.clone());
        let sigma = SigmaRows::build(&query, &digest, &sim);
        for mapping in [
            ColumnMapping {
                columns: vec![Some(0), Some(1)],
            },
            ColumnMapping {
                columns: vec![Some(1), None],
            },
        ] {
            for agg in [RowAgg::Max, RowAgg::Avg] {
                let (raw, raw_xs) =
                    tuple_table_score_detailed(&tuple, &table, &mapping, &sim, &inform, agg);
                let (fast, fast_xs) = tuple_table_score_digest_detailed(
                    &tuple, &digest, &mapping, &sigma, &inform, agg,
                );
                assert_eq!(raw.to_bits(), fast.to_bits(), "{agg:?} {mapping:?}");
                for (r, f) in raw_xs.iter().zip(&fast_xs) {
                    assert_eq!(r.to_bits(), f.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_table_scores_at_floor() {
        let (g, players, _) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let table = one_col_table(&[]);
        let mapping = ColumnMapping {
            columns: vec![Some(0)],
        };
        let q = vec![players[0]];
        let s = tuple_table_score(&q, &table, &mapping, &sim, &inform, RowAgg::Avg);
        assert_eq!(s, 0.5); // x = 0 → D = 1 → 1/(1+1)
    }

    #[test]
    fn unmapped_entities_count_as_zero() {
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let table = one_col_table(&[players[0]]);
        let mapping = ColumnMapping {
            columns: vec![Some(0), None],
        };
        let q = vec![players[0], teams[0]];
        let s = tuple_table_score(&q, &table, &mapping, &sim, &inform, RowAgg::Max);
        // x = (1, 0) → D = 1 → 0.5
        assert_eq!(s, 0.5);
    }

    #[test]
    fn informativeness_weights_shift_scores() {
        let (g, players, teams) = graph();
        let sim = TypeJaccard::new(&g);
        let q = vec![players[0], teams[0]];
        // Uniform: missing the team costs sqrt(1).
        let uniform = Informativeness::uniform();
        let s_uniform = tuple_tuple_semrel(&q, &vec![players[0]], &sim, &uniform);
        assert!((s_uniform - 0.5).abs() < 1e-12);
        // A weighted I that discounts the team makes the same miss cheaper —
        // emulate by building a lake where the team is ubiquitous.
        // (Integration-tested in the engine; here we just check monotonicity
        // via the distance_score primitive.)
        let x = vec![1.0, 0.0];
        let d_uniform = distance_score(&q, &x, &uniform);
        assert!((d_uniform - 0.5).abs() < 1e-12);
    }
}
