//! Queries: sets of entity tuples (§2.4).

use thetis_kg::EntityId;

/// One entity tuple `⟨e_1, ..., e_n⟩` — a list of KG entities.
pub type EntityTuple = Vec<EntityId>;

/// A query `Q = {t_1, ..., t_k}`: a set of entity tuples.
///
/// Tuples may have different widths; the engine maps each tuple to table
/// columns independently (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The query tuples.
    pub tuples: Vec<EntityTuple>,
}

impl Query {
    /// Creates a query from tuples, dropping empty ones.
    pub fn new(tuples: Vec<EntityTuple>) -> Self {
        Self {
            tuples: tuples.into_iter().filter(|t| !t.is_empty()).collect(),
        }
    }

    /// A single-tuple query.
    pub fn single(tuple: EntityTuple) -> Self {
        Self::new(vec![tuple])
    }

    /// Number of tuples `|Q|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the query has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All distinct entities mentioned anywhere in the query, in
    /// first-occurrence order (the LSEI lookup set).
    pub fn distinct_entities(&self) -> Vec<EntityId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            for &e in t {
                if seen.insert(e) {
                    out.push(e);
                }
            }
        }
        out
    }

    /// Maximum tuple width.
    pub fn width(&self) -> usize {
        self.tuples.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tuples_are_dropped() {
        let q = Query::new(vec![vec![], vec![EntityId(1)]]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn distinct_entities_dedup_across_tuples() {
        let q = Query::new(vec![
            vec![EntityId(1), EntityId(2)],
            vec![EntityId(2), EntityId(3)],
        ]);
        assert_eq!(
            q.distinct_entities(),
            vec![EntityId(1), EntityId(2), EntityId(3)]
        );
        assert_eq!(q.width(), 2);
    }

    #[test]
    fn single_builds_one_tuple() {
        let q = Query::single(vec![EntityId(9)]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.width(), 1);
    }
}
