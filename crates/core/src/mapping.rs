//! Query-tuple → table-column mapping `τ` (§5.1).
//!
//! The column-relevance of query entity `e_i` and column `C_j` is
//! `score(e_i, C_j) = Σ_{ē ∈ C_j} σ(e_i, ē)`; the Hungarian method then
//! assigns each query entity to a distinct column maximizing the summed
//! score. The mapping is computed once per (query tuple, table) and reused
//! for every row.

use thetis_datalake::{Table, TableDigest};

use crate::hungarian::max_assignment;
use crate::query::EntityTuple;
use crate::sigma::SigmaRows;
use crate::similarity::EntitySimilarity;

/// The column assignment of one query tuple in one table:
/// `columns[i]` is the column index of query entity `i`, or `None` when the
/// table has fewer columns than the tuple has entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMapping {
    /// Per-query-entity column assignment.
    pub columns: Vec<Option<usize>>,
}

/// Builds the score matrix `S` of §5.1 for one tuple and one table.
pub fn score_matrix(
    tuple: &EntityTuple,
    table: &Table,
    sim: &dyn EntitySimilarity,
) -> Vec<Vec<f64>> {
    let n_cols = table.n_cols();
    let mut matrix = vec![vec![0.0f64; n_cols]; tuple.len()];
    // Iterate row-major over the table once; cells without links contribute 0.
    for row in table.rows() {
        for (j, cell) in row.iter().enumerate() {
            if let Some(target) = cell.entity() {
                for (i, &e) in tuple.iter().enumerate() {
                    matrix[i][j] += sim.sim(e, target);
                }
            }
        }
    }
    matrix
}

/// Builds the same score matrix as [`score_matrix`] from a precomputed
/// table digest and σ rows, without touching raw rows or evaluating σ.
///
/// Each column's linked cells are replayed **in row order** (the digest
/// stores them that way), so every `S[i][j]` accumulates the exact same
/// floating-point additions as the raw row walk — the matrices are
/// bit-identical, and so is everything downstream of the Hungarian step.
pub fn score_matrix_digest(
    tuple: &EntityTuple,
    digest: &TableDigest,
    sigma: &SigmaRows,
) -> Vec<Vec<f64>> {
    let n_cols = digest.columns.len();
    let mut matrix = vec![vec![0.0f64; n_cols]; tuple.len()];
    for (i, &e) in tuple.iter().enumerate() {
        let row = sigma.row(e);
        for (j, col) in digest.columns.iter().enumerate() {
            let mut acc = 0.0f64;
            for &idx in &col.cells {
                acc += row[idx as usize];
            }
            matrix[i][j] = acc;
        }
    }
    matrix
}

/// [`map_tuple_to_columns_detailed`] over a digest and precomputed σ rows:
/// identical mapping and relevance, no raw-row work.
pub fn map_tuple_to_columns_digest_detailed(
    tuple: &EntityTuple,
    digest: &TableDigest,
    sigma: &SigmaRows,
) -> (ColumnMapping, Vec<f64>) {
    let matrix = score_matrix_digest(tuple, digest, sigma);
    let (columns, _) = max_assignment(&matrix);
    let relevance = columns
        .iter()
        .enumerate()
        .map(|(i, c)| c.map_or(0.0, |j| matrix[i][j]))
        .collect();
    (ColumnMapping { columns }, relevance)
}

/// Computes the optimal column mapping `τ` for `tuple` in `table`.
pub fn map_tuple_to_columns(
    tuple: &EntityTuple,
    table: &Table,
    sim: &dyn EntitySimilarity,
) -> ColumnMapping {
    map_tuple_to_columns_detailed(tuple, table, sim).0
}

/// [`map_tuple_to_columns`] keeping the chosen pairs' relevance: returns
/// the mapping plus, per query entity, the column-relevance score
/// `S[i][τ(i)]` of its assigned column (0 when unassigned) — the evidence
/// behind the Hungarian step's choice.
pub fn map_tuple_to_columns_detailed(
    tuple: &EntityTuple,
    table: &Table,
    sim: &dyn EntitySimilarity,
) -> (ColumnMapping, Vec<f64>) {
    let matrix = score_matrix(tuple, table, sim);
    let (columns, _) = max_assignment(&matrix);
    let relevance = columns
        .iter()
        .enumerate()
        .map(|(i, c)| c.map_or(0.0, |j| matrix[i][j]))
        .collect();
    (ColumnMapping { columns }, relevance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::CellValue;
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    /// KG with players (type P) and teams (type T); a table with a player
    /// column and a team column.
    fn fixture() -> (KnowledgeGraph, Table, Vec<EntityId>, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let t = b.add_type("Team", Some(thing));
        let players: Vec<EntityId> = (0..3)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let teams: Vec<EntityId> = (0..3)
            .map(|i| b.add_entity(&format!("t{i}"), vec![t]))
            .collect();
        let g = b.freeze();

        let mut table = Table::new("roster", vec!["Player".into(), "Team".into()]);
        for i in 0..3 {
            table.push_row(vec![
                CellValue::LinkedEntity {
                    mention: format!("p{i}"),
                    entity: players[i],
                },
                CellValue::LinkedEntity {
                    mention: format!("t{i}"),
                    entity: teams[i],
                },
            ]);
        }
        (g, table, players, teams)
    }

    #[test]
    fn entities_map_to_their_semantic_columns() {
        let (g, table, players, teams) = fixture();
        let sim = crate::similarity::TypeJaccard::new(&g);
        // Query (team, player) in *reversed* order: mapping must cross.
        let tuple = vec![teams[0], players[0]];
        let m = map_tuple_to_columns(&tuple, &table, &sim);
        assert_eq!(m.columns, vec![Some(1), Some(0)]);
    }

    #[test]
    fn score_matrix_sums_column_similarities() {
        let (g, table, players, _) = fixture();
        let sim = crate::similarity::TypeJaccard::new(&g);
        let m = score_matrix(&vec![players[0]], &table, &sim);
        // Column 0 contains p0 (σ=1) and two same-type players (σ=0.95 each).
        assert!((m[0][0] - (1.0 + 0.95 + 0.95)).abs() < 1e-9);
        // Column 1 contains 3 teams sharing only Thing: 3 × 1/3.
        assert!((m[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_entities_than_columns_leaves_some_unmapped() {
        let (g, table, players, teams) = fixture();
        let sim = crate::similarity::TypeJaccard::new(&g);
        let tuple = vec![players[0], teams[0], players[1]];
        let m = map_tuple_to_columns(&tuple, &table, &sim);
        assert_eq!(m.columns.iter().flatten().count(), 2);
        // The two mapped entities occupy distinct columns.
        let mut used: Vec<usize> = m.columns.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn digest_matrix_is_bit_identical_to_raw() {
        let (g, table, players, teams) = fixture();
        let sim = crate::similarity::TypeJaccard::new(&g);
        let digest = thetis_datalake::TableDigest::build(&table).unwrap();
        let tuple = vec![teams[1], players[2]];
        let query = crate::query::Query::single(tuple.clone());
        let sigma = crate::sigma::SigmaRows::build(&query, &digest, &sim);

        let raw = score_matrix(&tuple, &table, &sim);
        let fast = score_matrix_digest(&tuple, &digest, &sigma);
        for (ri, fi) in raw.iter().zip(&fast) {
            for (r, f) in ri.iter().zip(fi) {
                assert_eq!(r.to_bits(), f.to_bits());
            }
        }
        let (m_raw, rel_raw) = map_tuple_to_columns_detailed(&tuple, &table, &sim);
        let (m_fast, rel_fast) = map_tuple_to_columns_digest_detailed(&tuple, &digest, &sigma);
        assert_eq!(m_raw, m_fast);
        assert_eq!(rel_raw, rel_fast);
    }

    #[test]
    fn unlinked_table_maps_to_zero_scores() {
        let (g, _, players, _) = fixture();
        let sim = crate::similarity::TypeJaccard::new(&g);
        let mut table = Table::new("text", vec!["a".into()]);
        table.push_row(vec![CellValue::Text("no links".into())]);
        let m = score_matrix(&vec![players[0]], &table, &sim);
        assert_eq!(m, vec![vec![0.0]]);
    }
}
