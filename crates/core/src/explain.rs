//! Search-result explanations: *why* did this table get this score?
//!
//! For a (query, table) pair, [`explain`] reruns Algorithm 1's scoring for
//! that table only, keeping the intermediate state the fast path discards:
//! the column mapping `τ`, each query entity's best-matching cell entity,
//! and the per-entity similarity that entered the weighted distance. The
//! output is what a search UI renders next to a hit ("Ron Santo matched
//! column *Player* exactly; Milwaukee Brewers ≈ Chicago Cubs, σ = 0.95").

use thetis_datalake::{DataLake, TableId};
use thetis_kg::EntityId;
use thetis_lsh::lsei::AdmissionEvidence;

use crate::informativeness::Informativeness;
use crate::mapping::map_tuple_to_columns_detailed;
use crate::query::Query;
use crate::semrel::{distance_score, RowAgg};
use crate::similarity::EntitySimilarity;

/// How one query entity was matched in one table.
#[derive(Debug, Clone)]
pub struct EntityMatch {
    /// The query entity.
    pub query_entity: EntityId,
    /// The column `τ` assigned it to (`None` = no column left).
    pub column: Option<usize>,
    /// The column-relevance score `S[i][τ(i)]` that made the Hungarian
    /// step choose that column (0 when unassigned).
    pub column_relevance: f64,
    /// The best-matching entity in that column (under the row aggregation).
    pub matched_entity: Option<EntityId>,
    /// The aggregated similarity `x_i` that entered Eq. 2.
    pub similarity: f64,
    /// The informativeness weight `I(e)` of the query entity.
    pub weight: f64,
}

impl EntityMatch {
    /// This entity's contribution `I(e_i) · (1 − x_i)²` to the squared
    /// weighted distance of Eq. 2. Per tuple,
    /// `score = 1 / (sqrt(Σ_i contribution_i) + 1)` (Eq. 3) — the
    /// documented aggregation under which the per-entity σ breakdown sums
    /// to the reported SemRel score.
    pub fn distance_contribution(&self) -> f64 {
        let d = 1.0 - self.similarity;
        self.weight * d * d
    }
}

/// The explanation of one query tuple against the table.
#[derive(Debug, Clone)]
pub struct TupleExplanation {
    /// Per-query-entity matches.
    pub matches: Vec<EntityMatch>,
    /// The tuple's SemRel contribution (Eq. 3).
    pub score: f64,
}

impl TupleExplanation {
    /// The weighted distance `D_I` of Eq. 2, rebuilt from the per-entity
    /// contributions; `score == 1 / (weighted_distance() + 1)` always holds.
    pub fn weighted_distance(&self) -> f64 {
        self.matches
            .iter()
            .map(EntityMatch::distance_contribution)
            .sum::<f64>()
            .sqrt()
    }
}

/// A full explanation of `SemRel(Q, T)`: a complete score-provenance record
/// — mapping, per-entity σ breakdown, pruning bound, and (when the search
/// ran behind an LSEI) the admission evidence.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The explained table.
    pub table: TableId,
    /// One entry per query tuple.
    pub tuples: Vec<TupleExplanation>,
    /// The final table score (mean of tuple scores).
    pub score: f64,
    /// The relevance upper bound the pruning pass would have used for this
    /// table (≥ `score`; 0 for unlinked tables or empty queries).
    pub upper_bound: f64,
    /// Why the LSEI admitted this table (per-entity votes and band
    /// matches); `None` when the search did not run behind an LSEI.
    pub admission: Option<AdmissionEvidence>,
}

impl Explanation {
    /// Attaches LSEI admission evidence (see
    /// [`Lsei::admission_evidence`](thetis_lsh::lsei::Lsei::admission_evidence)).
    pub fn with_admission(mut self, admission: AdmissionEvidence) -> Self {
        self.admission = Some(admission);
        self
    }
}

/// Explains the SemRel score of `table` for `query` (max row aggregation,
/// as the engine's default).
pub fn explain(
    query: &Query,
    lake: &DataLake,
    table_id: TableId,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
) -> Explanation {
    let table = lake.table(table_id);
    let mut tuples = Vec::with_capacity(query.len());
    for tuple in &query.tuples {
        let (mapping, relevance) = map_tuple_to_columns_detailed(tuple, table, sim);
        let mut matches: Vec<EntityMatch> = tuple
            .iter()
            .zip(mapping.columns.iter().zip(&relevance))
            .map(|(&e, (&column, &column_relevance))| EntityMatch {
                query_entity: e,
                column,
                column_relevance,
                matched_entity: None,
                similarity: 0.0,
                weight: inform.weight(e),
            })
            .collect();
        // Max aggregation, remembering the argmax entity per query entity.
        for row in table.rows() {
            for m in matches.iter_mut() {
                let Some(col) = m.column else { continue };
                let Some(target) = row[col].entity() else {
                    continue;
                };
                let s = sim.sim(m.query_entity, target);
                if s > m.similarity {
                    m.similarity = s;
                    m.matched_entity = Some(target);
                }
            }
        }
        let xs: Vec<f64> = matches.iter().map(|m| m.similarity).collect();
        let score = distance_score(tuple, &xs, inform);
        tuples.push(TupleExplanation { matches, score });
    }
    let score = if tuples.is_empty() {
        0.0
    } else {
        tuples.iter().map(|t| t.score).sum::<f64>() / tuples.len() as f64
    };
    let upper_bound =
        crate::search::upper_bound_score(query, lake, table_id, sim, inform).unwrap_or(0.0);
    Explanation {
        table: table_id,
        tuples,
        score,
        upper_bound,
        admission: None,
    }
}

/// Consistency check: the explanation's score equals what Algorithm 1's
/// fast path computes (with [`RowAgg::Max`]).
pub fn matches_fast_path(
    explanation: &Explanation,
    query: &Query,
    lake: &DataLake,
    sim: &dyn EntitySimilarity,
    inform: &Informativeness,
) -> bool {
    let mut timings = crate::search::ScoreTimings::default();
    let fast = crate::search::score_table(
        query,
        lake,
        explanation.table,
        sim,
        inform,
        RowAgg::Max,
        &mut timings,
    );
    match fast {
        Some(s) => (s - explanation.score).abs() < 1e-9,
        None => explanation.score == 0.0 || explanation.tuples.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::KgBuilder;

    fn fixture() -> (
        thetis_kg::KnowledgeGraph,
        DataLake,
        Vec<EntityId>,
        Vec<EntityId>,
    ) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let t = b.add_type("Team", Some(thing));
        let players: Vec<EntityId> = (0..3)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let teams: Vec<EntityId> = (0..3)
            .map(|i| b.add_entity(&format!("t{i}"), vec![t]))
            .collect();
        let g = b.freeze();
        let cell = |e: EntityId, g: &thetis_kg::KnowledgeGraph| CellValue::LinkedEntity {
            mention: g.label(e).to_string(),
            entity: e,
        };
        let mut table = Table::new("roster", vec!["Player".into(), "Team".into()]);
        for i in 0..3 {
            table.push_row(vec![cell(players[i], &g), cell(teams[i], &g)]);
        }
        (g, DataLake::from_tables(vec![table]), players, teams)
    }

    #[test]
    fn explanation_identifies_exact_matches() {
        let (g, lake, players, teams) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0], teams[1]]);
        let ex = explain(&q, &lake, TableId(0), &sim, &inform);
        assert_eq!(ex.tuples.len(), 1);
        let m = &ex.tuples[0].matches;
        assert_eq!(m[0].matched_entity, Some(players[0]));
        assert_eq!(m[0].similarity, 1.0);
        assert_eq!(m[0].column, Some(0));
        assert_eq!(m[1].matched_entity, Some(teams[1]));
        assert_eq!(m[1].similarity, 1.0);
        assert_eq!(m[1].column, Some(1));
        assert_eq!(ex.score, 1.0);
        assert_eq!(ex.upper_bound, 1.0);
    }

    #[test]
    fn upper_bound_dominates_the_explained_score() {
        let (g, lake, players, teams) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        for q in [
            Query::single(vec![players[1]]),
            Query::single(vec![teams[2], players[1]]),
            Query::new(vec![vec![players[0], teams[0]], vec![players[2]]]),
        ] {
            let ex = explain(&q, &lake, TableId(0), &sim, &inform);
            assert!(
                ex.score <= ex.upper_bound + 1e-12,
                "score {} exceeds bound {} for {q:?}",
                ex.score,
                ex.upper_bound
            );
        }
    }

    #[test]
    fn explanation_score_matches_algorithm_one() {
        let (g, lake, players, teams) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        for q in [
            Query::single(vec![players[0]]),
            Query::single(vec![teams[2], players[1]]),
            Query::new(vec![vec![players[0], teams[0]], vec![players[2], teams[1]]]),
        ] {
            let ex = explain(&q, &lake, TableId(0), &sim, &inform);
            assert!(
                matches_fast_path(&ex, &q, &lake, &sim, &inform),
                "explanation diverged for {q:?}: {}",
                ex.score
            );
        }
    }

    #[test]
    fn contributions_rebuild_the_reported_score() {
        let (g, lake, players, teams) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        for q in [
            Query::single(vec![players[1]]),
            Query::single(vec![teams[2], players[1]]),
            Query::new(vec![vec![players[0], teams[0]], vec![players[2]]]),
        ] {
            let ex = explain(&q, &lake, TableId(0), &sim, &inform);
            let mut mean = 0.0;
            for t in &ex.tuples {
                // Eq. 3 over the per-entity contributions of Eq. 2.
                let rebuilt = 1.0 / (t.weighted_distance() + 1.0);
                assert!(
                    (rebuilt - t.score).abs() < 1e-12,
                    "{rebuilt} vs {}",
                    t.score
                );
                mean += t.score;
            }
            mean /= ex.tuples.len() as f64;
            assert!((mean - ex.score).abs() < 1e-12);
        }
    }

    #[test]
    fn mapped_entities_carry_their_column_relevance() {
        let (g, lake, players, teams) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        let q = Query::single(vec![players[0], teams[0]]);
        let ex = explain(&q, &lake, TableId(0), &sim, &inform);
        for m in &ex.tuples[0].matches {
            assert!(m.column.is_some());
            // The chosen column contains the exact entity plus same-type
            // neighbors: its relevance strictly exceeds the single best σ.
            assert!(m.column_relevance >= m.similarity);
        }
        assert!(ex.admission.is_none(), "no LSEI was involved");
    }

    #[test]
    fn related_matches_report_partial_similarity() {
        let (g, lake, players, _) = fixture();
        let sim = TypeJaccard::new(&g);
        let inform = Informativeness::uniform();
        // A KG entity of the same type that is NOT in the table.
        let q = Query::single(vec![players[0], players[1], players[2]]);
        let ex = explain(&q, &lake, TableId(0), &sim, &inform);
        let m = &ex.tuples[0].matches;
        // Only one player column exists: one entity gets it (σ=1 for its own
        // row or 0.95 for same-type), the others map elsewhere or nowhere.
        let mapped: Vec<_> = m.iter().filter(|x| x.column.is_some()).collect();
        assert!(!mapped.is_empty());
        for x in m {
            assert!((0.0..=1.0).contains(&x.similarity));
            assert!(x.weight > 0.0);
        }
    }
}
