//! Query-scoped σ memoization.
//!
//! Algorithm 1 recomputes `σ(e, ē)` for the same `(query entity, lake
//! entity)` pair many times in one search: the pair shows up once per
//! occurrence of `ē` in every candidate table — in the score matrix, again
//! in the row aggregation, and again for every other table mentioning `ē`.
//! [`SimilarityCache`] memoizes each pair exactly once per search (or longer,
//! when a caller shares one cache across searches), and
//! [`CachedSimilarity`] threads the memo through the existing
//! [`EntitySimilarity`] call sites without signature changes.
//!
//! The cache is sharded so the parallel scorer's workers rarely contend on
//! the same lock, and it counts lookups so searches can report
//! `sigma_computed` / `sigma_cached`: every lookup either computes σ (miss)
//! or serves it from the memo (hit), so the two counters always sum to the
//! total number of lookups. Under a concurrent race two workers may both
//! miss the same fresh pair and compute it twice; both count as computed, so
//! the invariant still holds (σ must therefore be deterministic — see
//! [`EntitySimilarity`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use thetis_kg::EntityId;

use crate::similarity::{EntitySimilarity, SigmaKernel};

/// Time spent actually evaluating σ (cache misses only). Timed per call —
/// a clock read costs a few percent of one σ evaluation — and only while
/// metrics are enabled, so the disabled path stays clock-free.
static OBS_SIGMA: thetis_obs::Span = thetis_obs::Span::new("core.sigma");

/// Time spent in batched σ kernels (cache misses only); the count is the
/// number of pairs evaluated, so `nanos / count` is the amortized per-pair
/// cost the batching buys.
static OBS_SIGMA_BATCH: thetis_obs::Span = thetis_obs::Span::new("core.sigma_batch");

/// Evaluates `sim.sim_kernel(kernel, a, b)`, recording wall time into the
/// `core.sigma` span when metrics are enabled.
#[inline]
fn timed_sim(sim: &dyn EntitySimilarity, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
    if !thetis_obs::enabled() {
        return sim.sim_kernel(kernel, a, b);
    }
    let start = std::time::Instant::now();
    let v = sim.sim_kernel(kernel, a, b);
    OBS_SIGMA.record_nanos(start.elapsed().as_nanos() as u64, 1);
    v
}

/// Evaluates `sim.sim_batch_kernel(kernel, a, bs, out)`, recording wall
/// time and pair count into the `core.sigma_batch` span when metrics are
/// enabled.
#[inline]
fn timed_sim_batch(
    sim: &dyn EntitySimilarity,
    kernel: SigmaKernel,
    a: EntityId,
    bs: &[EntityId],
    out: &mut [f64],
) {
    if !thetis_obs::enabled() {
        sim.sim_batch_kernel(kernel, a, bs, out);
        return;
    }
    let start = std::time::Instant::now();
    sim.sim_batch_kernel(kernel, a, bs, out);
    OBS_SIGMA_BATCH.record_nanos(start.elapsed().as_nanos() as u64, bs.len() as u64);
}

/// Counter snapshot of a [`SimilarityCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// σ evaluations performed (cache misses).
    pub computed: u64,
    /// σ lookups served from the memo (cache hits).
    pub served: u64,
}

impl CacheStats {
    /// Total σ lookups, hits plus misses.
    pub fn lookups(&self) -> u64 {
        self.computed + self.served
    }

    /// Fraction of lookups served from the memo (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.served as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            computed: self.computed - earlier.computed,
            served: self.served - earlier.served,
        }
    }

    /// Records this delta as a `sigma.cache` event on `trace` (a no-op for
    /// an inactive trace): how many σ evaluations the search performed, how
    /// many lookups the memo served, and the resulting hit rate. One summary
    /// event per search — per-lookup events would dominate the trace.
    pub fn record_trace_summary(&self, trace: &thetis_obs::QueryTrace) {
        trace.record_with("sigma.cache", || {
            thetis_obs::trace_attrs![
                ("computed", self.computed),
                ("served", self.served),
                ("hit_rate", self.hit_rate()),
            ]
        });
    }
}

/// One memo shard: `(query entity, lake entity, kernel tag) → σ`.
type MemoShard = RwLock<HashMap<(u32, u32, u8), f64>>;

/// A thread-safe memo of `σ(query entity, lake entity)` values, sharded by
/// key hash so parallel scoring workers mostly touch disjoint locks.
///
/// Keys are directional — `(a, b)` and `(b, a)` are distinct entries — so no
/// symmetry assumption is imposed on the wrapped similarity. Keys also
/// carry the [`SigmaKernel`] tag the value was computed under: a search
/// running the f32 kernel never observes a memoized f64 σ (or vice versa),
/// even when a long-lived shared cache spans requests with different
/// kernels.
///
/// Lock poisoning is recovered, not propagated: a worker that panics while
/// holding a shard lock (panic isolation catches it per table) leaves the
/// shard usable. Every write is a single `insert` of an independent entry,
/// so a poisoned shard is never structurally torn — at worst one memo
/// entry is missing and gets recomputed.
pub struct SimilarityCache {
    shards: Vec<MemoShard>,
    computed: AtomicU64,
    served: AtomicU64,
    /// Shard wipes forced by the capacity bound (or an explicit
    /// [`SimilarityCache::evict_entries`]).
    evictions: AtomicU64,
    /// Per-shard entry budget (0 = unbounded). Enforced at insert time:
    /// a shard that would grow past it is wiped first, so total residency
    /// stays under `shards × per_shard_cap` entries.
    per_shard_cap: usize,
}

impl Default for SimilarityCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityCache {
    /// Shard count used by [`SimilarityCache::new`]; enough that the
    /// default parallel scorer (one worker per core) rarely contends.
    pub const DEFAULT_SHARDS: usize = 64;

    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// An empty cache with `shards` lock shards (rounded up to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, 0)
    }

    /// An empty cache with `shards` lock shards and a total entry budget.
    ///
    /// `capacity` bounds resident memo entries (each is 16 bytes of key +
    /// value plus map overhead); 0 means unbounded. Eviction is
    /// coarse-grained and cheap: when an insert would push a shard past its
    /// `capacity / shards` slice, that whole shard is wiped first — a
    /// random-ish 1/`shards` of the cache — rather than tracking any
    /// per-entry recency. Evicted pairs are recomputed on next use; the
    /// hit/miss counters are unaffected, so the
    /// `computed + served == lookups` invariant survives eviction.
    pub fn with_shards_and_capacity(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_cap = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            computed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            per_shard_cap,
        }
    }

    /// Total entry budget this cache enforces (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// Shard wipes performed so far (capacity evictions plus explicit
    /// [`SimilarityCache::evict_entries`] calls, one per non-empty shard).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Inserts under the capacity bound: wipes the shard first when the
    /// insert would overflow its slice of the budget.
    fn insert_bounded(&self, key: (u32, u32, u8), v: f64) {
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        if self.per_shard_cap > 0 && shard.len() >= self.per_shard_cap && !shard.contains_key(&key)
        {
            shard.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.insert(key, v);
    }

    fn shard(&self, key: (u32, u32, u8)) -> &MemoShard {
        let h = ((((key.0 as u64) << 32) | key.1 as u64) ^ ((key.2 as u64) << 17))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 33) as usize % self.shards.len()]
    }

    /// Looks up `σ(a, b)` under the reference kernel, computing and
    /// memoizing it through `sim` on a miss.
    pub fn sim_through(&self, sim: &dyn EntitySimilarity, a: EntityId, b: EntityId) -> f64 {
        self.sim_through_kernel(sim, SigmaKernel::F64Exact, a, b)
    }

    /// Looks up `σ(a, b)` under `kernel`, computing and memoizing it
    /// through `sim` on a miss. The memo entry is keyed by the kernel, so
    /// values computed under one kernel are invisible to another.
    pub fn sim_through_kernel(
        &self,
        sim: &dyn EntitySimilarity,
        kernel: SigmaKernel,
        a: EntityId,
        b: EntityId,
    ) -> f64 {
        let key = (a.0, b.0, kernel.tag());
        let shard = self.shard(key);
        if let Some(&v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.served.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let v = timed_sim(sim, kernel, a, b);
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.insert_bounded(key, v);
        v
    }

    /// Looks up `σ(a, b)` for every `b` of `bs` under the reference
    /// kernel; see [`SimilarityCache::sim_batch_through_kernel`].
    pub fn sim_batch_through(
        &self,
        sim: &dyn EntitySimilarity,
        a: EntityId,
        bs: &[EntityId],
        out: &mut [f64],
    ) {
        self.sim_batch_through_kernel(sim, SigmaKernel::F64Exact, a, bs, out);
    }

    /// Looks up `σ(a, b)` for every `b` of `bs` under `kernel`, batching
    /// the misses through one `sim.sim_batch_kernel` call and memoizing
    /// them. Hits count as served and misses as computed, exactly as if
    /// each pair had gone through
    /// [`SimilarityCache::sim_through_kernel`] — the
    /// `computed + served == lookups` invariant is preserved.
    pub fn sim_batch_through_kernel(
        &self,
        sim: &dyn EntitySimilarity,
        kernel: SigmaKernel,
        a: EntityId,
        bs: &[EntityId],
        out: &mut [f64],
    ) {
        debug_assert_eq!(bs.len(), out.len());
        let tag = kernel.tag();
        let mut miss_idx: Vec<u32> = Vec::new();
        let mut miss_bs: Vec<EntityId> = Vec::new();
        for (i, &b) in bs.iter().enumerate() {
            let key = (a.0, b.0, tag);
            match self
                .shard(key)
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
            {
                Some(&v) => out[i] = v,
                None => {
                    miss_idx.push(i as u32);
                    miss_bs.push(b);
                }
            }
        }
        self.served
            .fetch_add((bs.len() - miss_bs.len()) as u64, Ordering::Relaxed);
        if miss_bs.is_empty() {
            return;
        }
        let mut miss_out = vec![0.0f64; miss_bs.len()];
        timed_sim_batch(sim, kernel, a, &miss_bs, &mut miss_out);
        self.computed
            .fetch_add(miss_bs.len() as u64, Ordering::Relaxed);
        for ((&i, &b), &v) in miss_idx.iter().zip(&miss_bs).zip(&miss_out) {
            out[i as usize] = v;
            self.insert_bounded((a.0, b.0, tag), v);
        }
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            computed: self.computed.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
        }
    }

    /// Drops all memoized pairs and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.computed.store(0, Ordering::Relaxed);
        self.served.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drops all memoized pairs but keeps the hit/miss counters — the
    /// eviction primitive for a long-lived shared cache, where counters
    /// are deltas other threads may be mid-way through measuring (a
    /// counter reset under a concurrent [`CacheStats::since`] would
    /// underflow). Each non-empty shard wiped counts as one eviction.
    pub fn evict_entries(&self) {
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
            if !shard.is_empty() {
                shard.clear();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A cross-query σ memo tagged with the lake epoch it was warmed on — the
/// resident-service promotion of [`SimilarityCache`].
///
/// A server shares one of these across every request. Before a request
/// uses the memo it calls [`SharedSimilarityCache::for_epoch`] with the
/// epoch of the lake snapshot it pinned; when the epoch has advanced past
/// the tag (an `add`/`remove`/`relink` committed), the entries are evicted
/// once and the tag moves forward. Eviction keeps the hit/miss counters
/// (see [`SimilarityCache::evict_entries`]) so concurrent requests
/// measuring per-request deltas never underflow.
///
/// The eviction is *conservative*, not load-bearing for correctness: every
/// σ the engine ships (type Jaccard, predicate Jaccard, embedding cosine)
/// depends only on the knowledge graph and embedding store — which a lake
/// mutation never touches — so a request still pinned to an older snapshot
/// may keep inserting after the wipe and its values remain bit-exact for
/// any epoch. The tag exists so that a deployment whose σ *did* become
/// lake-dependent degrades to stale-entry eviction instead of silently
/// serving wrong values, and so memory from retired epochs is reclaimed.
pub struct SharedSimilarityCache {
    cache: SimilarityCache,
    /// The lake epoch the current entries were (first) warmed on.
    epoch: AtomicU64,
    /// Epoch advances that triggered an eviction.
    invalidations: AtomicU64,
}

impl SharedSimilarityCache {
    /// Wraps a bounded [`SimilarityCache`] tagged at `epoch`.
    pub fn new(epoch: u64, shards: usize, capacity: usize) -> Self {
        let cache = SimilarityCache::with_shards_and_capacity(shards, capacity);
        Self {
            cache,
            epoch: AtomicU64::new(epoch),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Returns the memo for a request pinned at `epoch`, evicting stale
    /// entries first when the epoch advanced past the tag. Exactly one
    /// caller per advance performs the eviction (compare-exchange on the
    /// tag); requests pinned to *older* epochs never move the tag back.
    pub fn for_epoch(&self, epoch: u64) -> &SimilarityCache {
        let mut seen = self.epoch.load(Ordering::Acquire);
        while epoch > seen {
            match self
                .epoch
                .compare_exchange_weak(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    self.cache.evict_entries();
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(now) => seen = now,
            }
        }
        &self.cache
    }

    /// The epoch the entries are currently tagged with.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// How many epoch advances evicted the memo so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// The underlying memo, without an epoch check (stats, tests).
    pub fn cache(&self) -> &SimilarityCache {
        &self.cache
    }
}

/// An [`EntitySimilarity`] that answers through a [`SimilarityCache`],
/// drop-in wherever a `&dyn EntitySimilarity` is expected.
///
/// The wrapper carries the [`SigmaKernel`] the search selected: every σ
/// that flows through the plain `sim`/`sim_batch` surface is evaluated
/// under that kernel and memoized under its tag, so downstream code
/// (SigmaRows, the Hungarian scorer) stays kernel-oblivious.
pub struct CachedSimilarity<'a> {
    inner: &'a dyn EntitySimilarity,
    cache: &'a SimilarityCache,
    kernel: SigmaKernel,
}

impl<'a> CachedSimilarity<'a> {
    /// Wraps `inner` under the reference kernel.
    pub fn new(inner: &'a dyn EntitySimilarity, cache: &'a SimilarityCache) -> Self {
        Self::with_kernel(inner, cache, SigmaKernel::F64Exact)
    }

    /// Wraps `inner` so σ evaluates under `kernel` and memoizes into
    /// `cache` with the matching key tag.
    pub fn with_kernel(
        inner: &'a dyn EntitySimilarity,
        cache: &'a SimilarityCache,
        kernel: SigmaKernel,
    ) -> Self {
        Self {
            inner,
            cache,
            kernel,
        }
    }

    /// The cache in use.
    pub fn cache(&self) -> &SimilarityCache {
        self.cache
    }

    /// The kernel this wrapper evaluates under.
    pub fn kernel(&self) -> SigmaKernel {
        self.kernel
    }
}

impl EntitySimilarity for CachedSimilarity<'_> {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        self.cache.sim_through_kernel(self.inner, self.kernel, a, b)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        self.cache
            .sim_batch_through_kernel(self.inner, self.kernel, a, bs, out);
    }

    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        self.cache.sim_through_kernel(self.inner, kernel, a, b)
    }

    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        self.cache
            .sim_batch_through_kernel(self.inner, kernel, a, bs, out);
    }

    fn slab_bytes(&self) -> usize {
        self.inner.slab_bytes()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// An [`EntitySimilarity`] that counts σ evaluations without memoizing —
/// the instrumentation counterpart of [`CachedSimilarity`] for the
/// exhaustive baseline, so memoized and unmemoized searches report
/// comparable `sigma_computed` numbers. Like [`CachedSimilarity`] it
/// carries the selected [`SigmaKernel`] and routes the plain surface
/// through it.
pub struct CountingSimilarity<'a> {
    inner: &'a dyn EntitySimilarity,
    computed: AtomicU64,
    kernel: SigmaKernel,
}

impl<'a> CountingSimilarity<'a> {
    /// Wraps `inner` under the reference kernel, counting every
    /// evaluation.
    pub fn new(inner: &'a dyn EntitySimilarity) -> Self {
        Self::with_kernel(inner, SigmaKernel::F64Exact)
    }

    /// Wraps `inner` so σ evaluates under `kernel`, counting every
    /// evaluation.
    pub fn with_kernel(inner: &'a dyn EntitySimilarity, kernel: SigmaKernel) -> Self {
        Self {
            inner,
            computed: AtomicU64::new(0),
            kernel,
        }
    }

    /// σ evaluations performed so far.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }
}

impl EntitySimilarity for CountingSimilarity<'_> {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        self.computed.fetch_add(1, Ordering::Relaxed);
        timed_sim(self.inner, self.kernel, a, b)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        self.computed.fetch_add(bs.len() as u64, Ordering::Relaxed);
        timed_sim_batch(self.inner, self.kernel, a, bs, out);
    }

    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        self.computed.fetch_add(1, Ordering::Relaxed);
        timed_sim(self.inner, kernel, a, b)
    }

    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        self.computed.fetch_add(bs.len() as u64, Ordering::Relaxed);
        timed_sim_batch(self.inner, kernel, a, bs, out);
    }

    fn slab_bytes(&self) -> usize {
        self.inner.slab_bytes()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_kg::KgBuilder;

    fn graph() -> (thetis_kg::KnowledgeGraph, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let es = (0..4)
            .map(|i| b.add_entity(&format!("e{i}"), vec![p]))
            .collect();
        (b.freeze(), es)
    }

    #[test]
    fn second_lookup_is_served_from_the_memo() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        let first = cached.sim(es[0], es[1]);
        let second = cached.sim(es[0], es[1]);
        assert_eq!(first, second);
        assert_eq!(
            cache.stats(),
            CacheStats {
                computed: 1,
                served: 1
            }
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cached.name(), "types");
    }

    #[test]
    fn keys_are_directional() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        cached.sim(es[0], es[1]);
        cached.sim(es[1], es[0]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().computed, 2);
    }

    #[test]
    fn counters_sum_to_lookups() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::with_shards(3);
        let cached = CachedSimilarity::new(&sim, &cache);
        let mut lookups = 0u64;
        for _ in 0..3 {
            for &a in &es {
                for &b in &es {
                    cached.sim(a, b);
                    lookups += 1;
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), lookups);
        assert_eq!(stats.computed, 16);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn batch_lookups_keep_the_counter_invariant() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::with_shards(4);
        let cached = CachedSimilarity::new(&sim, &cache);
        let mut out = vec![0.0f64; es.len()];
        // First batch: all misses, computed in one kernel call.
        cached.sim_batch(es[0], &es, &mut out);
        assert_eq!(
            cache.stats(),
            CacheStats {
                computed: 4,
                served: 0
            }
        );
        // Second batch: all hits.
        cached.sim_batch(es[0], &es, &mut out);
        assert_eq!(
            cache.stats(),
            CacheStats {
                computed: 4,
                served: 4
            }
        );
        // Mixed batch: one new entity among three memoized pairs.
        let mixed = vec![es[1], es[2], es[3], es[0]];
        cached.sim_batch(es[0], &mixed, &mut out[..4]);
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 12);
        // Batched values match the scalar path bit-for-bit.
        for (&b, &v) in mixed.iter().zip(&out) {
            assert_eq!(v.to_bits(), sim.sim(es[0], b).to_bits());
        }
    }

    #[test]
    fn counting_similarity_counts_batched_pairs() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let counting = CountingSimilarity::new(&sim);
        let mut out = vec![0.0f64; es.len()];
        counting.sim_batch(es[0], &es, &mut out);
        counting.sim(es[0], es[1]);
        assert_eq!(counting.computed(), es.len() as u64 + 1);
    }

    #[test]
    fn clear_resets_everything() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        cached.sim(es[0], es[1]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_lookups_keep_the_invariant() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let cached = CachedSimilarity::new(&sim, &cache);
                    for _ in 0..50 {
                        for &a in &es {
                            for &b in &es {
                                cached.sim(a, b);
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 4 * 50 * 16);
        // At most one duplicated compute per pair per racing thread.
        assert!(stats.computed >= 16 && stats.computed <= 64, "{stats:?}");
    }

    #[test]
    fn capacity_bound_evicts_instead_of_growing() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        // One shard, room for two entries: the third insert wipes it.
        let cache = SimilarityCache::with_shards_and_capacity(1, 2);
        assert_eq!(cache.capacity(), 2);
        let cached = CachedSimilarity::new(&sim, &cache);
        cached.sim(es[0], es[1]);
        cached.sim(es[0], es[2]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        cached.sim(es[0], es[3]);
        assert_eq!(cache.len(), 1, "shard wiped before the overflow insert");
        assert_eq!(cache.evictions(), 1);
        // Counters survive eviction: 3 computes, 0 hits so far.
        assert_eq!(
            cache.stats(),
            CacheStats {
                computed: 3,
                served: 0
            }
        );
        // Re-inserting an existing key at capacity does not evict.
        cached.sim(es[0], es[3]);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.stats().served, 1);
    }

    #[test]
    fn batched_inserts_respect_the_capacity_bound() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::with_shards_and_capacity(1, 2);
        let cached = CachedSimilarity::new(&sim, &cache);
        let mut out = vec![0.0f64; es.len()];
        cached.sim_batch(es[0], &es, &mut out);
        assert!(cache.len() <= 2);
        assert!(cache.evictions() > 0);
        // Values are still bit-identical to the unbounded path.
        for (&b, &v) in es.iter().zip(&out) {
            assert_eq!(v.to_bits(), sim.sim(es[0], b).to_bits());
        }
    }

    #[test]
    fn evict_entries_keeps_counters() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::new();
        let cached = CachedSimilarity::new(&sim, &cache);
        cached.sim(es[0], es[1]);
        cached.sim(es[0], es[1]);
        let before = cache.stats();
        cache.evict_entries();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), before, "eviction never touches counters");
        assert_eq!(cache.evictions(), 1);
        // The pair recomputes on next use.
        cached.sim(es[0], es[1]);
        assert_eq!(cache.stats().computed, before.computed + 1);
    }

    #[test]
    fn shared_cache_invalidates_once_per_epoch_advance() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let shared = SharedSimilarityCache::new(3, 4, 0);
        assert_eq!(shared.epoch(), 3);
        let warm = shared.for_epoch(3);
        CachedSimilarity::new(&sim, warm).sim(es[0], es[1]);
        assert_eq!(shared.cache().len(), 1);
        // A request pinned to an older snapshot neither evicts nor
        // rewinds the tag.
        shared.for_epoch(2);
        assert_eq!(shared.epoch(), 3);
        assert_eq!(shared.cache().len(), 1);
        assert_eq!(shared.invalidations(), 0);
        // The epoch advancing evicts exactly once…
        shared.for_epoch(5);
        assert_eq!(shared.epoch(), 5);
        assert!(shared.cache().is_empty());
        assert_eq!(shared.invalidations(), 1);
        // …and repeated calls at the new epoch are free.
        shared.for_epoch(5);
        assert_eq!(shared.invalidations(), 1);
        // Counters survived the invalidation.
        assert_eq!(shared.cache().stats().computed, 1);
    }

    #[test]
    fn shared_cache_concurrent_epoch_advance_evicts_once() {
        let shared = SharedSimilarityCache::new(0, 8, 0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for e in 1..=10u64 {
                        shared.for_epoch(e);
                    }
                });
            }
        });
        assert_eq!(shared.epoch(), 10);
        // One eviction per distinct advance at most — the CAS arbitrates,
        // but racing threads may skip intermediate epochs entirely.
        assert!(shared.invalidations() <= 10, "{}", shared.invalidations());
        assert!(shared.invalidations() >= 1);
    }

    #[test]
    fn kernel_tags_partition_the_memo() {
        use crate::similarity::EmbeddingCosine;
        let mut store = thetis_embedding::EmbeddingStore::zeros(3, 4);
        for i in 0..3u32 {
            let row = store.get_mut(EntityId(i));
            for (j, x) in row.iter_mut().enumerate() {
                *x = ((i as usize * 7 + j * 3) % 5) as f32 - 2.0;
            }
        }
        let sim = EmbeddingCosine::new(&store);
        let cache = SimilarityCache::with_shards(2);
        let f64_view = CachedSimilarity::new(&sim, &cache);
        let f32_view = CachedSimilarity::with_kernel(&sim, &cache, SigmaKernel::F32);
        assert_eq!(f32_view.kernel(), SigmaKernel::F32);
        let (a, b) = (EntityId(0), EntityId(1));
        let exact = f64_view.sim(a, b);
        let quant = f32_view.sim(a, b);
        // Same pair, two kernels: two distinct memo entries, two computes.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().computed, 2);
        // Each view serves its own kernel's value back.
        assert_eq!(f64_view.sim(a, b).to_bits(), exact.to_bits());
        assert_eq!(f32_view.sim(a, b).to_bits(), quant.to_bits());
        assert_eq!(cache.stats().served, 2);
        assert_eq!(exact.to_bits(), sim.sim(a, b).to_bits());
        assert_eq!(
            quant.to_bits(),
            sim.sim_kernel(SigmaKernel::F32, a, b).to_bits()
        );
    }

    #[test]
    fn poisoned_shard_is_recovered_not_propagated() {
        let (g, es) = graph();
        let sim = TypeJaccard::new(&g);
        let cache = SimilarityCache::with_shards(1);
        let cached = CachedSimilarity::new(&sim, &cache);
        let expect = cached.sim(es[0], es[1]);

        // Poison the single shard: panic while holding its write lock.
        let shard = &cache.shards[0];
        let join = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = shard.write().unwrap();
                    panic!("poison the shard on purpose");
                })
                .join()
        });
        assert!(join.is_err());
        assert!(shard.is_poisoned());

        // Every access path still works and the memo survived intact.
        assert_eq!(cached.sim(es[0], es[1]), expect);
        assert_eq!(cached.sim(es[2], es[3]), sim.sim(es[2], es[3]));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
