//! Query relaxation for over-specialized queries.
//!
//! The paper observes (§7.2) that 5-tuple queries can *lose* recall
//! against 1-tuple queries because they become over-specialized, and lists
//! handling this as future work (§8). This module implements the natural
//! mechanism: when the best results are weak, iteratively drop the
//! **least informative** entity from each query tuple (the entity whose
//! absence the weighted distance of Eq. 2 penalizes least) and search
//! again.
//!
//! Relaxation never fabricates relevance — the returned scores are genuine
//! SemRel values of the relaxed query — and the process records what was
//! dropped so callers can surface it ("ignored: Milwaukee").

use thetis_kg::EntityId;

use crate::engine::{SearchOptions, SearchResult, ThetisEngine};
use crate::query::Query;
use crate::similarity::EntitySimilarity;

/// When and how far to relax.
#[derive(Debug, Clone, Copy)]
pub struct RelaxationConfig {
    /// Relax while the `min_results`-th best score is below this.
    pub score_target: f64,
    /// Require at least this many results before judging the score target.
    pub min_results: usize,
    /// Maximum entities dropped per tuple.
    pub max_drops: usize,
}

impl Default for RelaxationConfig {
    fn default() -> Self {
        Self {
            score_target: 0.75,
            min_results: 3,
            max_drops: 2,
        }
    }
}

/// The outcome of a relaxed search.
#[derive(Debug, Clone)]
pub struct RelaxedSearch {
    /// The final result (from the most relaxed query actually used).
    pub result: SearchResult,
    /// Entities dropped from the query, in drop order.
    pub dropped: Vec<EntityId>,
    /// How many relaxation rounds ran (0 = original query was good enough).
    pub rounds: usize,
}

/// Whether `result` satisfies the config's quality bar.
fn good_enough(result: &SearchResult, config: &RelaxationConfig) -> bool {
    if result.ranked.len() < config.min_results {
        return false;
    }
    result.ranked[config.min_results - 1].1 >= config.score_target
}

/// Searches, relaxing the query while results stay weak.
///
/// Each round removes one entity from every tuple still wider than one
/// entity, choosing the drop by a two-level priority:
///
/// 1. entities that occur in **no table of the lake** — they can never be
///    mapped, so dropping them is free;
/// 2. otherwise the entity with the lowest informativeness weight `I(e)`
///    — frequent, low-discrimination entities (the "Milwaukee" of the
///    paper's example) go first.
pub fn search_with_relaxation<S: EntitySimilarity>(
    engine: &ThetisEngine<'_, S>,
    query: &Query,
    options: SearchOptions,
    config: &RelaxationConfig,
) -> RelaxedSearch {
    let mut current = query.clone();
    let mut dropped = Vec::new();
    let mut rounds = 0;
    let mut result = engine.search(&current, options);

    let postings = engine.lake().postings();
    let drop_key = |e: EntityId| -> (u8, f64) {
        let seen = postings.get(&e).is_some_and(|t| !t.is_empty());
        (u8::from(seen), engine.informativeness().weight(e))
    };

    while rounds < config.max_drops && !good_enough(&result, config) {
        let mut any_drop = false;
        for tuple in &mut current.tuples {
            if tuple.len() <= 1 {
                continue;
            }
            let (idx, _) = tuple
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    let (sa, wa) = drop_key(a);
                    let (sb, wb) = drop_key(b);
                    sa.cmp(&sb).then(wa.total_cmp(&wb))
                })
                .expect("tuple is non-empty");
            dropped.push(tuple.remove(idx));
            any_drop = true;
        }
        if !any_drop {
            break;
        }
        rounds += 1;
        result = engine.search(&current, options);
    }

    RelaxedSearch {
        result,
        dropped,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, DataLake, Table};
    use thetis_kg::{KgBuilder, KnowledgeGraph};

    /// A lake of player tables; the query additionally names a city that
    /// appears in *every* table (so it is maximally uninformative) but
    /// never in the same column layout — an over-specialized query.
    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>, EntityId) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let player = b.add_type("Player", Some(thing));
        let city = b.add_type("City", Some(thing));
        let players: Vec<EntityId> = (0..6)
            .map(|i| b.add_entity(&format!("p{i}"), vec![player]))
            .collect();
        let milwaukee = b.add_entity("Milwaukee", vec![city]);
        let g = b.freeze();

        let cell = |e: EntityId, g: &KnowledgeGraph| CellValue::LinkedEntity {
            mention: g.label(e).to_string(),
            entity: e,
        };
        // One-column player tables; the city entity appears in every table,
        // making it maximally frequent (I ≈ minimum).
        let tables = (0..3)
            .map(|i| {
                let mut t = Table::new(format!("t{i}"), vec!["p".into()]);
                t.push_row(vec![cell(players[2 * i], &g)]);
                t.push_row(vec![cell(players[2 * i + 1], &g)]);
                t.push_row(vec![cell(milwaukee, &g)]);
                t
            })
            .collect();
        (g, DataLake::from_tables(tables), players, milwaukee)
    }

    #[test]
    fn relaxation_drops_the_least_informative_entity() {
        let (g, lake, players, milwaukee) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        // Over-specialized: player + city, but the single-column tables can
        // map only one of them.
        let query = Query::single(vec![players[0], milwaukee]);
        let strict = engine.search(&query, SearchOptions::top(3));
        let relaxed = search_with_relaxation(
            &engine,
            &query,
            SearchOptions::top(3),
            &RelaxationConfig {
                score_target: 0.9,
                min_results: 1,
                max_drops: 2,
            },
        );
        assert_eq!(relaxed.rounds, 1);
        assert_eq!(relaxed.dropped, vec![milwaukee]);
        assert!(
            relaxed.result.ranked[0].1 > strict.ranked[0].1,
            "relaxed {} should beat strict {}",
            relaxed.result.ranked[0].1,
            strict.ranked[0].1
        );
    }

    #[test]
    fn good_queries_are_not_relaxed() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let query = Query::single(vec![players[0]]);
        let relaxed = search_with_relaxation(
            &engine,
            &query,
            SearchOptions::top(3),
            &RelaxationConfig {
                score_target: 0.5,
                min_results: 1,
                max_drops: 3,
            },
        );
        assert_eq!(relaxed.rounds, 0);
        assert!(relaxed.dropped.is_empty());
    }

    #[test]
    fn relaxation_never_empties_a_tuple() {
        let (g, lake, players, milwaukee) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let query = Query::single(vec![players[0], milwaukee]);
        let relaxed = search_with_relaxation(
            &engine,
            &query,
            SearchOptions::top(3),
            &RelaxationConfig {
                score_target: 2.0, // unreachable: relax as far as allowed
                min_results: 1,
                max_drops: 10,
            },
        );
        // Tuple shrinks to a single entity and stops.
        assert_eq!(relaxed.dropped.len(), 1);
        assert!(!relaxed.result.ranked.is_empty());
    }
}
