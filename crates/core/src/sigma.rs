//! Per-table σ rows: the batched similarity kernel feeding Algorithm 1.
//!
//! For one (query, table) pair every score the engine needs — the §5.1
//! column-relevance matrix, the row aggregation, and the pruning upper
//! bound — draws from the same value set `σ(e, ē)` for query entities `e`
//! and *distinct* table entities `ē`. [`SigmaRows`] materializes that set
//! once per table with one [`EntitySimilarity::sim_batch`] call per
//! distinct query entity, so the σ cache is consulted once per (query
//! entity, distinct entity) pair instead of once per cell occurrence, and
//! every later consumer is a plain array index.

use thetis_datalake::TableDigest;
use thetis_kg::EntityId;

use crate::query::Query;
use crate::similarity::EntitySimilarity;

/// The σ values of every distinct query entity against every distinct
/// entity of one table digest: `row(e)[j] = σ(e, digest.distinct[j])`.
#[derive(Debug, Clone)]
pub struct SigmaRows {
    entities: Vec<EntityId>,
    rows: Vec<Vec<f64>>,
}

impl SigmaRows {
    /// Evaluates σ for all of `query`'s distinct entities against all of
    /// `digest`'s distinct entities, one batched kernel call per query
    /// entity.
    pub fn build(query: &Query, digest: &TableDigest, sim: &dyn EntitySimilarity) -> Self {
        // Chaos-testing hook: an armed `sigma` failpoint panics here, which
        // the per-table isolation in `search.rs` must contain.
        thetis_obs::faults::maybe_panic("sigma");
        let entities = query.distinct_entities();
        let rows = entities
            .iter()
            .map(|&e| {
                let mut row = vec![0.0f64; digest.distinct.len()];
                sim.sim_batch(e, &digest.distinct, &mut row);
                row
            })
            .collect();
        Self { entities, rows }
    }

    /// The σ row of query entity `e` (indexed like `digest.distinct`).
    ///
    /// # Panics
    /// Panics if `e` is not a query entity.
    #[inline]
    pub fn row(&self, e: EntityId) -> &[f64] {
        let i = self
            .entities
            .iter()
            .position(|&x| x == e)
            .expect("entity is not part of the query");
        &self.rows[i]
    }

    /// `max_ē σ(e, ē)` over the table's distinct entities, capped at 1 —
    /// the per-entity coordinate of the pruning upper bound. Identical to
    /// folding the scalar σ over the table's entity pool (max is
    /// order-independent).
    pub fn bound_of(&self, e: EntityId) -> f64 {
        self.row(e).iter().copied().fold(0.0f64, f64::max).min(1.0)
    }

    /// The distinct query entities, in first-occurrence order.
    pub fn entities(&self) -> &[EntityId] {
        &self.entities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::KgBuilder;

    #[test]
    fn rows_match_scalar_sigma_bitwise() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let es: Vec<EntityId> = (0..4)
            .map(|i| b.add_entity(&format!("e{i}"), vec![p]))
            .collect();
        let g = b.freeze();
        let sim = TypeJaccard::new(&g);

        let mut t = Table::new("t", vec!["a".into()]);
        for &e in &es[1..] {
            t.push_row(vec![CellValue::LinkedEntity {
                mention: "m".into(),
                entity: e,
            }]);
        }
        let digest = TableDigest::build(&t).unwrap();
        let q = Query::new(vec![vec![es[0], es[1]], vec![es[0]]]);
        let rows = SigmaRows::build(&q, &digest, &sim);

        assert_eq!(rows.entities(), &[es[0], es[1]]);
        for &e in rows.entities() {
            for (j, &target) in digest.distinct.iter().enumerate() {
                assert_eq!(rows.row(e)[j].to_bits(), sim.sim(e, target).to_bits());
            }
        }
        // e1 is in the table: its bound is the exact-match 1.0.
        assert_eq!(rows.bound_of(es[1]), 1.0);
        // e0 is not: its best is the same-type cap.
        assert_eq!(rows.bound_of(es[0]), 0.95);
    }

    #[test]
    #[should_panic(expected = "not part of the query")]
    fn foreign_entity_panics() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let e0 = b.add_entity("e0", vec![thing]);
        let e1 = b.add_entity("e1", vec![thing]);
        let g = b.freeze();
        let sim = TypeJaccard::new(&g);
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![CellValue::LinkedEntity {
            mention: "m".into(),
            entity: e1,
        }]);
        let digest = TableDigest::build(&t).unwrap();
        let rows = SigmaRows::build(&Query::single(vec![e1]), &digest, &sim);
        let _ = rows.row(e0);
    }
}
