//! The Thetis search engine: Algorithm 1 + optional LSEI prefiltering
//! behind a single API.

use std::time::{Duration, Instant};

use thetis_datalake::{DataLake, TableId};
use thetis_kg::KnowledgeGraph;
use thetis_lsh::lsei::{EntitySigner, Lsei};

use crate::cache::{CachedSimilarity, CountingSimilarity, SimilarityCache};
use crate::informativeness::Informativeness;
use crate::query::Query;
use crate::search::{
    score_candidates_pruned_traced, score_candidates_traced, Schedule, ScoreTimings,
};
use crate::semrel::RowAgg;
use crate::similarity::{EntitySimilarity, SigmaKernel};
use crate::topk::TopK;

/// One engine search end to end (prefilter excluded — that is `lsh.query`).
static OBS_SEARCH: thetis_obs::Span = thetis_obs::Span::new("core.search");
/// Hungarian column-mapping time, bulk-merged from the scoring workers.
static OBS_HUNGARIAN: thetis_obs::Span = thetis_obs::Span::new("core.hungarian");
/// Row-aggregation time, bulk-merged from the scoring workers.
static OBS_ROW_AGG: thetis_obs::Span = thetis_obs::Span::new("core.row_agg");
static OBS_SEARCHES: thetis_obs::Counter = thetis_obs::Counter::new("core.searches");
static OBS_CANDIDATES: thetis_obs::Counter = thetis_obs::Counter::new("core.candidates");
static OBS_TABLES_SCORED: thetis_obs::Counter = thetis_obs::Counter::new("core.tables_scored");
static OBS_TABLES_PRUNED: thetis_obs::Counter = thetis_obs::Counter::new("core.tables_pruned");
static OBS_SIGMA_COMPUTED: thetis_obs::Counter = thetis_obs::Counter::new("core.sigma_computed");
static OBS_SIGMA_CACHED: thetis_obs::Counter = thetis_obs::Counter::new("core.sigma_cached");
static OBS_SEARCH_LATENCY: thetis_obs::Histogram =
    thetis_obs::Histogram::new("core.search_latency");
/// Searches whose deadline expired before every candidate was visited.
static OBS_DEADLINE_EXPIRED: thetis_obs::Counter =
    thetis_obs::Counter::new("core.deadline_expired");
/// Prefiltered searches that fell back to an exhaustive scan because the
/// LSEI index was missing or failed verification.
static OBS_LSEI_FALLBACK: thetis_obs::Counter = thetis_obs::Counter::new("lsei.fallback");

/// Knobs of one search call.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Number of results to return.
    pub k: usize,
    /// Row-score aggregation (the paper recommends [`RowAgg::Max`]).
    pub agg: RowAgg,
    /// Worker threads for table scoring (0 = all available cores).
    pub threads: usize,
    /// Memoize `σ(query entity, lake entity)` in a query-scoped
    /// [`SimilarityCache`] shared across all candidate tables, so each pair
    /// is evaluated at most once per search.
    pub memoize: bool,
    /// Skip the Hungarian mapping and row aggregation for tables whose
    /// relevance upper bound cannot beat the running top-`k` floor. The
    /// ranking is identical to the exhaustive path either way.
    pub prune: bool,
    /// Candidates claimed per work-stealing block (see
    /// [`Schedule::block`]).
    pub steal_block: usize,
    /// Per-thread sequential-fallback cutoff: workers are only spawned
    /// when `candidates ≥ threads × min_per_thread` (see
    /// [`Schedule::min_per_thread`]).
    pub min_per_thread: usize,
    /// Wall-clock budget for the scoring pass. When it expires the search
    /// stops claiming work at steal-block granularity and returns the
    /// best-so-far top-`k` with [`SearchStats::degraded`] set and the
    /// skipped candidates counted in [`SearchStats::tables_unscored`].
    /// Tables that *were* scored keep bit-identical scores. There is no
    /// minimum-progress guarantee: a zero budget yields an empty, fully
    /// degraded result. `None` (the default) means unbounded.
    pub deadline: Option<Duration>,
    /// Which σ arithmetic the search runs (§16). The default,
    /// [`SigmaKernel::F64Exact`], is bit-identical to every release before
    /// quantization; `F32`/`I8` select the quantized slabs for bounded
    /// numeric drift in exchange for vectorized throughput. Memoized σ
    /// values are keyed by the kernel, so mixed-kernel callers sharing a
    /// cache never cross-contaminate.
    pub kernel: SigmaKernel,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            k: 10,
            agg: RowAgg::Max,
            threads: 0,
            memoize: true,
            prune: true,
            steal_block: Schedule::DEFAULT_BLOCK,
            min_per_thread: Schedule::DEFAULT_MIN_PER_THREAD,
            deadline: None,
            kernel: SigmaKernel::F64Exact,
        }
    }
}

impl SearchOptions {
    /// Top-`k` search with defaults otherwise.
    pub fn top(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Top-`k` search with memoization and pruning disabled — the
    /// reference path the optimized one is validated against.
    pub fn exhaustive(k: usize) -> Self {
        Self {
            k,
            memoize: false,
            prune: false,
            ..Self::default()
        }
    }

    /// The same options with a wall-clock scoring budget attached.
    pub fn with_deadline(self, budget: Duration) -> Self {
        Self {
            deadline: Some(budget),
            ..self
        }
    }

    /// The same options running σ under `kernel`.
    pub fn with_kernel(self, kernel: SigmaKernel) -> Self {
        Self { kernel, ..self }
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// The work-stealing schedule these options resolve to.
    pub fn schedule(&self) -> Schedule {
        Schedule {
            threads: self.resolved_threads(),
            block: self.steal_block.max(1),
            min_per_thread: self.min_per_thread.max(1),
        }
    }
}

/// Why a search result is partial — the degradation ladder's rungs, as a
/// bitset so a single query can degrade for several reasons at once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedReasons {
    /// The wall-clock budget expired before every candidate was visited.
    pub deadline: bool,
    /// At least one table's scoring (or bounding) panicked and was dropped.
    pub worker_panic: bool,
    /// The LSEI prefilter was unusable (missing/corrupt index) and the
    /// search fell back to an exhaustive scan.
    pub lsei_fallback: bool,
}

impl DegradedReasons {
    /// Whether any reason is set.
    pub fn any(&self) -> bool {
        self.deadline || self.worker_panic || self.lsei_fallback
    }

    /// The set reasons as stable labels (for traces, CLI output, logs).
    pub fn labels(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.deadline {
            out.push("deadline");
        }
        if self.worker_panic {
            out.push("worker_panic");
        }
        if self.lsei_fallback {
            out.push("lsei_fallback");
        }
        out
    }
}

impl std::fmt::Display for DegradedReasons {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return f.write_str("none");
        }
        f.write_str(&self.labels().join("+"))
    }
}

/// Instrumentation of one search call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Tables that passed prefiltering (the whole lake without it).
    pub candidates: usize,
    /// Tables actually scored (candidates minus unlinked tables).
    pub tables_scored: usize,
    /// Search-space reduction achieved by the prefilter, in `[0, 1]`.
    pub reduction: f64,
    /// Wall time of the prefilter lookup, nanoseconds.
    pub prefilter_nanos: u64,
    /// Wall time of the whole search, nanoseconds.
    pub total_nanos: u64,
    /// Whether the ranking is partial: some candidate that would have been
    /// considered was skipped (deadline, panic, lost worker) or the
    /// prefilter fell back. Scored tables keep bit-identical scores even
    /// when this is set.
    pub degraded: bool,
    /// Candidates that received no disposition at all — neither scored,
    /// pruned, nor skipped as unlinked — plus tables dropped by panic
    /// isolation. Zero on a healthy run.
    pub tables_unscored: usize,
    /// Which rungs of the degradation ladder fired.
    pub degraded_reason: DegradedReasons,
    /// The lake generation this search read. A search pinned to an
    /// [`EpochLake`](thetis_datalake::EpochLake) snapshot reports the
    /// pinned epoch even while writers publish newer ones.
    pub lake_epoch: thetis_datalake::LakeEpoch,
    /// Scoring-time breakdown.
    pub timings: ScoreTimings,
}

impl SearchStats {
    /// Tables skipped by upper-bound pruning.
    pub fn tables_pruned(&self) -> usize {
        self.timings.tables_pruned
    }

    /// Tables dropped because their scoring panicked (isolated per table).
    pub fn worker_panics(&self) -> usize {
        self.timings.tables_panicked
    }

    /// σ evaluations actually performed.
    pub fn sigma_computed(&self) -> u64 {
        self.timings.sigma_computed
    }

    /// σ lookups served from the query-scoped memo.
    pub fn sigma_cached(&self) -> u64 {
        self.timings.sigma_cached
    }

    /// Fraction of σ lookups served from the memo.
    pub fn sigma_hit_rate(&self) -> f64 {
        self.timings.sigma_hit_rate()
    }
}

/// A ranked search result.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// `(table, SemRel)` pairs in descending score order.
    pub ranked: Vec<(TableId, f64)>,
    /// Instrumentation.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Just the table ids, best first.
    pub fn table_ids(&self) -> Vec<TableId> {
        self.ranked.iter().map(|&(t, _)| t).collect()
    }
}

/// The semantic table search engine of the paper, parameterized by the
/// entity similarity `σ` (types or embeddings).
pub struct ThetisEngine<'a, S> {
    graph: &'a KnowledgeGraph,
    lake: &'a DataLake,
    sim: S,
    inform: Informativeness,
}

impl<'a, S: EntitySimilarity> ThetisEngine<'a, S> {
    /// Creates an engine with informativeness weights derived from the lake
    /// (requires fresh postings).
    pub fn new(graph: &'a KnowledgeGraph, lake: &'a DataLake, sim: S) -> Self {
        Self {
            graph,
            lake,
            sim,
            inform: Informativeness::from_lake(lake),
        }
    }

    /// Creates an engine with explicit informativeness weights.
    pub fn with_informativeness(
        graph: &'a KnowledgeGraph,
        lake: &'a DataLake,
        sim: S,
        inform: Informativeness,
    ) -> Self {
        Self {
            graph,
            lake,
            sim,
            inform,
        }
    }

    /// The reference knowledge graph.
    pub fn graph(&self) -> &KnowledgeGraph {
        self.graph
    }

    /// The data lake being searched.
    pub fn lake(&self) -> &DataLake {
        self.lake
    }

    /// The similarity in use.
    pub fn similarity(&self) -> &S {
        &self.sim
    }

    /// The informativeness weights in use.
    pub fn informativeness(&self) -> &Informativeness {
        &self.inform
    }

    /// Brute-force semantic search (Algorithm 1) over the whole lake.
    pub fn search(&self, query: &Query, options: SearchOptions) -> SearchResult {
        let all: Vec<TableId> = (0..self.lake.len() as u32).map(TableId).collect();
        self.search_candidates(query, options, &all, 0, 0.0)
    }

    /// [`ThetisEngine::search`] with a flight recorder attached: an active
    /// trace receives the full per-query event stream (Hungarian mappings,
    /// per-tuple SemRel breakdowns, prune decisions, σ-cache summary,
    /// ranked results, phase timings). Pass [`QueryTrace::disabled`]
    /// (or a sampled-out handle) for zero extra work.
    ///
    /// [`QueryTrace::disabled`]: thetis_obs::QueryTrace::disabled
    pub fn search_traced(
        &self,
        query: &Query,
        options: SearchOptions,
        trace: &thetis_obs::QueryTrace,
    ) -> SearchResult {
        let all: Vec<TableId> = (0..self.lake.len() as u32).map(TableId).collect();
        self.search_candidates_cached(query, options, &all, 0, 0.0, None, trace)
    }

    /// Brute-force search memoizing σ into a caller-provided cache, so the
    /// memo outlives one call: repeating a search against an already-warm
    /// cache computes no σ at all (hit rate 1.0). The caller must clear or
    /// replace the cache when the underlying similarity changes.
    pub fn search_with_cache(
        &self,
        query: &Query,
        options: SearchOptions,
        cache: &SimilarityCache,
    ) -> SearchResult {
        let all: Vec<TableId> = (0..self.lake.len() as u32).map(TableId).collect();
        self.search_candidates_cached(
            query,
            options,
            &all,
            0,
            0.0,
            Some(cache),
            &thetis_obs::QueryTrace::disabled(),
        )
    }

    /// Semantic search with LSEI prefiltering (§6): only tables surviving
    /// the voting prefilter are scored.
    pub fn search_prefiltered<Sg: EntitySigner>(
        &self,
        query: &Query,
        options: SearchOptions,
        lsei: &Lsei<Sg>,
        votes: usize,
    ) -> SearchResult {
        self.search_prefiltered_traced(
            query,
            options,
            lsei,
            votes,
            &thetis_obs::QueryTrace::disabled(),
        )
    }

    /// [`ThetisEngine::search_prefiltered`] with a flight recorder attached:
    /// the LSEI lookup additionally records its per-entity band matches and
    /// per-table vote counts (see
    /// [`Lsei::prefilter_traced`](thetis_lsh::lsei::Lsei::prefilter_traced)),
    /// followed by the full scoring event stream.
    pub fn search_prefiltered_traced<Sg: EntitySigner>(
        &self,
        query: &Query,
        options: SearchOptions,
        lsei: &Lsei<Sg>,
        votes: usize,
        trace: &thetis_obs::QueryTrace,
    ) -> SearchResult {
        let start = Instant::now();
        let pre = lsei.prefilter_traced(&query.distinct_entities(), votes, trace);
        let prefilter_nanos = start.elapsed().as_nanos() as u64;
        let reduction = pre.reduction(self.lake.len());
        self.search_candidates_cached(
            query,
            options,
            &pre.tables,
            prefilter_nanos,
            reduction,
            None,
            trace,
        )
    }

    /// Prefiltered search that tolerates a missing or unverifiable index —
    /// the degradation ladder's LSEI rung. Pass `Some(lsei)` for the
    /// normal prefiltered path; pass `None` (the index file was missing,
    /// truncated, or failed its checksum) to fall back to an exhaustive
    /// scan of the whole lake. The fallback bumps the `lsei.fallback`
    /// counter, records an `lsei.fallback` trace event, and marks the
    /// result `degraded` with `degraded_reason.lsei_fallback` so callers
    /// can warn — but the ranking itself is *complete* (every table was
    /// considered), just slower to produce.
    pub fn search_prefiltered_resilient<Sg: EntitySigner>(
        &self,
        query: &Query,
        options: SearchOptions,
        lsei: Option<&Lsei<Sg>>,
        votes: usize,
        trace: &thetis_obs::QueryTrace,
    ) -> SearchResult {
        match lsei {
            Some(index) => self.search_prefiltered_traced(query, options, index, votes, trace),
            None => {
                if thetis_obs::enabled() {
                    OBS_LSEI_FALLBACK.inc();
                }
                trace.record_with("lsei.fallback", || {
                    thetis_obs::trace_attrs![("tables", self.lake.len())]
                });
                let mut res = self.search_traced(query, options, trace);
                res.stats.degraded = true;
                res.stats.degraded_reason.lsei_fallback = true;
                res
            }
        }
    }

    /// [`ThetisEngine::search_prefiltered_resilient`] memoizing σ into a
    /// caller-provided cache that outlives the call — the request path of a
    /// resident service, where one
    /// [`SharedSimilarityCache`](crate::cache::SharedSimilarityCache)
    /// (already resolved to its inner [`SimilarityCache`] via
    /// `for_epoch`) is shared across every concurrent query. Per-request
    /// [`SearchStats`] σ counters are deltas over the shared counters, so
    /// a repeat query against a warm cache reports
    /// [`SearchStats::sigma_hit_rate`] of 1.0. Falls back to an exhaustive
    /// scan (marked `degraded_reason.lsei_fallback`) when `lsei` is
    /// `None`, exactly like the resilient path.
    pub fn search_prefiltered_shared<Sg: EntitySigner>(
        &self,
        query: &Query,
        options: SearchOptions,
        lsei: Option<&Lsei<Sg>>,
        votes: usize,
        cache: &SimilarityCache,
        trace: &thetis_obs::QueryTrace,
    ) -> SearchResult {
        match lsei {
            Some(index) => {
                let start = Instant::now();
                let pre = index.prefilter_traced(&query.distinct_entities(), votes, trace);
                let prefilter_nanos = start.elapsed().as_nanos() as u64;
                let reduction = pre.reduction(self.lake.len());
                self.search_candidates_cached(
                    query,
                    options,
                    &pre.tables,
                    prefilter_nanos,
                    reduction,
                    Some(cache),
                    trace,
                )
            }
            None => {
                if thetis_obs::enabled() {
                    OBS_LSEI_FALLBACK.inc();
                }
                trace.record_with("lsei.fallback", || {
                    thetis_obs::trace_attrs![("tables", self.lake.len())]
                });
                let all: Vec<TableId> = (0..self.lake.len() as u32).map(TableId).collect();
                let mut res =
                    self.search_candidates_cached(query, options, &all, 0, 0.0, Some(cache), trace);
                res.stats.degraded = true;
                res.stats.degraded_reason.lsei_fallback = true;
                res
            }
        }
    }

    /// Prefiltered search with query-side column aggregation (§6.2): the
    /// entities at each tuple position merge into one LSEI lookup, so a
    /// 5-tuple query costs as much as a 1-tuple query.
    pub fn search_prefiltered_aggregated<Sg: EntitySigner>(
        &self,
        query: &Query,
        options: SearchOptions,
        lsei: &Lsei<Sg>,
        votes: usize,
    ) -> SearchResult {
        let start = Instant::now();
        // Transpose tuples into per-position entity groups.
        let width = query.width();
        let mut columns: Vec<Vec<thetis_kg::EntityId>> = vec![Vec::new(); width];
        for tuple in &query.tuples {
            for (i, &e) in tuple.iter().enumerate() {
                columns[i].push(e);
            }
        }
        let pre = lsei.prefilter_aggregated(&columns, votes);
        let prefilter_nanos = start.elapsed().as_nanos() as u64;
        let reduction = pre.reduction(self.lake.len());
        self.search_candidates(query, options, &pre.tables, prefilter_nanos, reduction)
    }

    /// Semantic search restricted to an explicit candidate set (used for
    /// alternative prefilters, e.g. the BM25-prefiltering ablation of
    /// §7.3).
    pub fn search_among(
        &self,
        query: &Query,
        options: SearchOptions,
        candidates: &[TableId],
    ) -> SearchResult {
        let reduction = if self.lake.is_empty() {
            0.0
        } else {
            1.0 - candidates.len() as f64 / self.lake.len() as f64
        };
        self.search_candidates(query, options, candidates, 0, reduction)
    }

    fn search_candidates(
        &self,
        query: &Query,
        options: SearchOptions,
        candidates: &[TableId],
        prefilter_nanos: u64,
        reduction: f64,
    ) -> SearchResult {
        self.search_candidates_cached(
            query,
            options,
            candidates,
            prefilter_nanos,
            reduction,
            None,
            &thetis_obs::QueryTrace::disabled(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn search_candidates_cached(
        &self,
        query: &Query,
        options: SearchOptions,
        candidates: &[TableId],
        prefilter_nanos: u64,
        reduction: f64,
        external: Option<&SimilarityCache>,
        trace: &thetis_obs::QueryTrace,
    ) -> SearchResult {
        let _search = OBS_SEARCH.start();
        let start = Instant::now();
        // The epoch of the (pinned) lake view this whole search reads.
        let lake_epoch = self.lake.epoch();
        trace.record_with("lake.epoch", || {
            thetis_obs::trace_attrs![("epoch", lake_epoch)]
        });
        // A query-scoped memo, unless the caller brought a longer-lived one.
        let owned = (external.is_none() && options.memoize).then(SimilarityCache::new);
        let cache = external.or(owned.as_ref());
        let before = cache.map(|c| c.stats());

        let sched = options.schedule();
        // The budget covers the scoring pass; prefilter time already spent
        // is the caller's concern (it is typically microseconds).
        let deadline_at = options.deadline.map(|d| start + d);
        let run = |sim: &(dyn EntitySimilarity + Sync)| {
            if options.prune {
                score_candidates_pruned_traced(
                    query,
                    self.lake,
                    candidates,
                    sim,
                    &self.inform,
                    options.agg,
                    sched,
                    options.k,
                    deadline_at,
                    trace,
                )
            } else {
                score_candidates_traced(
                    query,
                    self.lake,
                    candidates,
                    sim,
                    &self.inform,
                    options.agg,
                    sched,
                    deadline_at,
                    trace,
                )
            }
        };

        let (scored, mut timings) = match cache {
            Some(c) => run(&CachedSimilarity::with_kernel(&self.sim, c, options.kernel)),
            None => {
                let counting = CountingSimilarity::with_kernel(&self.sim, options.kernel);
                let out = run(&counting);
                (out.0, {
                    let mut t = out.1;
                    t.sigma_computed = counting.computed();
                    t
                })
            }
        };
        if let (Some(c), Some(before)) = (cache, before) {
            let delta = c.stats().since(before);
            timings.sigma_computed = delta.computed;
            timings.sigma_cached = delta.served;
            delta.record_trace_summary(trace);
        }

        let tables_unscored = timings.tables_unscored + timings.tables_panicked;
        let degraded_reason = DegradedReasons {
            deadline: timings.deadline_hit,
            worker_panic: timings.tables_panicked > 0,
            lsei_fallback: false,
        };
        let degraded = degraded_reason.any() || tables_unscored > 0;
        if degraded {
            trace.record_with("search.degraded", || {
                thetis_obs::trace_attrs![
                    ("reason", degraded_reason.to_string()),
                    ("tables_unscored", tables_unscored),
                    ("tables_panicked", timings.tables_panicked),
                ]
            });
        }

        let mut topk = TopK::new(options.k);
        for (tid, score) in scored {
            topk.push(tid, score);
        }
        let ranked = topk.into_sorted();
        if trace.is_active() {
            for (rank, &(tid, score)) in ranked.iter().enumerate() {
                trace.record(
                    "search.result",
                    thetis_obs::trace_attrs![
                        ("rank", rank + 1),
                        ("table", tid.0),
                        ("score", score)
                    ],
                );
            }
        }
        let total_nanos = prefilter_nanos + start.elapsed().as_nanos() as u64;
        trace.record_phase_with("core.search", start, || {
            thetis_obs::trace_attrs![
                ("candidates", candidates.len()),
                ("tables_scored", timings.tables_scored),
                ("tables_pruned", timings.tables_pruned),
            ]
        });
        if thetis_obs::enabled() {
            OBS_SEARCHES.inc();
            OBS_CANDIDATES.add(candidates.len() as u64);
            OBS_TABLES_SCORED.add(timings.tables_scored as u64);
            OBS_TABLES_PRUNED.add(timings.tables_pruned as u64);
            OBS_SIGMA_COMPUTED.add(timings.sigma_computed);
            OBS_SIGMA_CACHED.add(timings.sigma_cached);
            OBS_HUNGARIAN.record_nanos(timings.mapping_nanos, timings.mapping_count);
            OBS_ROW_AGG.record_nanos(timings.agg_nanos, timings.tables_scored as u64);
            OBS_SEARCH_LATENCY.observe_nanos(total_nanos);
            if timings.deadline_hit {
                OBS_DEADLINE_EXPIRED.inc();
            }
        }
        SearchResult {
            ranked,
            stats: SearchStats {
                candidates: candidates.len(),
                tables_scored: timings.tables_scored,
                reduction,
                prefilter_nanos,
                total_nanos,
                degraded,
                tables_unscored,
                degraded_reason,
                lake_epoch,
                timings,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_datalake::{CellValue, Table};
    use thetis_kg::{EntityId, KgBuilder};
    use thetis_lsh::lsei::{LseiMode, TypeSigner};
    use thetis_lsh::{LshConfig, TypeFilter};

    fn fixture() -> (KnowledgeGraph, DataLake, Vec<EntityId>, Vec<EntityId>) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let v = b.add_type("Volleyballer", Some(thing));
        let players: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let volley: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("v{i}"), vec![v]))
            .collect();
        let g = b.freeze();
        let mk = |name: &str, es: &[EntityId]| {
            let mut t = Table::new(name, vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let lake = DataLake::from_tables(vec![
            mk("players_a", &players[0..4]),
            mk("players_b", &players[4..8]),
            mk("volley_a", &volley[0..4]),
            mk("volley_b", &volley[4..8]),
        ]);
        (g, lake, players, volley)
    }

    #[test]
    fn search_ranks_topically_relevant_tables_first() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![players[0]]);
        let res = engine.search(&q, SearchOptions::top(4));
        assert_eq!(res.ranked.len(), 4);
        // The table containing p0 first, then the other player table.
        assert_eq!(res.ranked[0].0, TableId(0));
        assert_eq!(res.ranked[1].0, TableId(1));
        assert!(res.ranked[0].1 > res.ranked[1].1);
        assert!(res.ranked[1].1 > res.ranked[2].1);
        assert_eq!(res.stats.tables_scored, 4);
    }

    #[test]
    fn prefiltered_search_matches_brute_force_top_results() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let q = Query::single(vec![players[0]]);
        let brute = engine.search(&q, SearchOptions::top(2));
        let fast = engine.search_prefiltered(&q, SearchOptions::top(2), &lsei, 1);
        assert_eq!(brute.table_ids(), fast.table_ids());
        assert!(fast.stats.reduction >= 0.0);
        assert!(fast.stats.candidates <= lake.len());
    }

    #[test]
    fn aggregated_prefilter_also_finds_exact_tables() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let q = Query::single(vec![players[0], players[1]]);
        let res = engine.search_prefiltered_aggregated(&q, SearchOptions::top(2), &lsei, 1);
        assert!(res.table_ids().contains(&TableId(0)));
    }

    #[test]
    fn quantized_kernel_search_tracks_reference_ranking() {
        use crate::similarity::EmbeddingCosine;
        let (g, lake, players, _) = fixture();
        let n = g.entity_count();
        let mut store = thetis_embedding::EmbeddingStore::zeros(n, 8);
        for i in 0..n as u32 {
            let row = store.get_mut(EntityId(i));
            for (j, x) in row.iter_mut().enumerate() {
                *x = (((i as usize * 13 + j * 7) % 19) as f32 - 9.0) / 4.0;
            }
        }
        let engine = ThetisEngine::new(&g, &lake, EmbeddingCosine::new(&store));
        let q = Query::single(vec![players[0], players[3]]);
        let exact = engine.search(&q, SearchOptions::top(4));
        for kernel in [SigmaKernel::F32, SigmaKernel::I8] {
            let quant = engine.search(&q, SearchOptions::top(4).with_kernel(kernel));
            assert_eq!(exact.table_ids(), quant.table_ids(), "{kernel}");
            for ((_, want), (_, got)) in exact.ranked.iter().zip(&quant.ranked) {
                assert!((want - got).abs() < 0.05, "{kernel}: {got} vs {want}");
            }
            // Memoized and unmemoized runs agree bit-for-bit per kernel.
            let unmemo = engine.search(
                &q,
                SearchOptions {
                    memoize: false,
                    ..SearchOptions::top(4).with_kernel(kernel)
                },
            );
            for ((ta, sa), (tb, sb)) in quant.ranked.iter().zip(&unmemo.ranked) {
                assert_eq!(ta, tb);
                assert_eq!(sa.to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn stats_reflect_work_done() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![players[0]]);
        let res = engine.search(&q, SearchOptions::top(10));
        assert_eq!(res.stats.candidates, 4);
        assert_eq!(res.stats.reduction, 0.0);
        assert!(res.stats.total_nanos > 0);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let (g, lake, _, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let res = engine.search(&Query::new(vec![]), SearchOptions::top(5));
        assert!(res.ranked.is_empty());
    }

    #[test]
    fn optimized_search_matches_the_exhaustive_path() {
        let (g, lake, players, volley) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::new(vec![vec![players[0]], vec![volley[1], players[3]]]);
        for k in [1, 2, 4, 10] {
            let fast = engine.search(&q, SearchOptions::top(k));
            let slow = engine.search(&q, SearchOptions::exhaustive(k));
            assert_eq!(fast.ranked, slow.ranked, "k = {k}");
        }
    }

    #[test]
    fn memoization_cuts_sigma_evaluations() {
        // Tables with overlapping entity sets: within one table the digest
        // already dedups σ to distinct pairs, so the memo's win is serving
        // the entities shared *across* tables.
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p = b.add_type("Player", Some(thing));
        let players: Vec<EntityId> = (0..8)
            .map(|i| b.add_entity(&format!("p{i}"), vec![p]))
            .collect();
        let g = b.freeze();
        let mk = |name: &str, es: &[EntityId]| {
            let mut t = Table::new(name, vec!["c".into()]);
            for &e in es {
                t.push_row(vec![CellValue::LinkedEntity {
                    mention: "m".into(),
                    entity: e,
                }]);
            }
            t
        };
        let lake = DataLake::from_tables(vec![
            mk("a", &players[0..4]),
            mk("b", &players[2..6]),
            mk("c", &players[4..8]),
        ]);
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![players[0]]);
        // Disable pruning on both sides so the comparison isolates the memo.
        let memo = engine.search(
            &q,
            SearchOptions {
                prune: false,
                ..SearchOptions::top(3)
            },
        );
        let raw = engine.search(&q, SearchOptions::exhaustive(3));
        assert_eq!(memo.ranked, raw.ranked);
        // 8 distinct lake entities → at most 8 distinct pairs to compute;
        // the 4 overlap entities are served from the memo on their second
        // table. The raw path recomputes per table: 3 × 4 = 12.
        assert!(memo.stats.sigma_computed() <= 8);
        assert!(raw.stats.sigma_computed() > memo.stats.sigma_computed());
        assert_eq!(raw.stats.sigma_cached(), 0);
        assert!(memo.stats.sigma_cached() > 0);
        assert!(memo.stats.sigma_hit_rate() > 0.0);
    }

    #[test]
    fn shared_cache_serves_a_repeat_search_entirely() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![players[0], players[1]]);
        let cache = crate::cache::SimilarityCache::new();
        let first = engine.search_with_cache(&q, SearchOptions::top(4), &cache);
        let second = engine.search_with_cache(&q, SearchOptions::top(4), &cache);
        assert_eq!(first.ranked, second.ranked);
        assert!(first.stats.sigma_computed() > 0);
        assert_eq!(second.stats.sigma_computed(), 0);
        assert_eq!(second.stats.sigma_hit_rate(), 1.0);
    }

    #[test]
    fn shared_prefiltered_search_warms_across_queries_and_falls_back() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let q = Query::single(vec![players[0]]);
        let opts = SearchOptions {
            prune: false,
            ..SearchOptions::top(4)
        };
        let shared = crate::cache::SharedSimilarityCache::new(lake.epoch(), 8, 0);
        let off = thetis_obs::QueryTrace::disabled();

        let cache = shared.for_epoch(lake.epoch());
        let first = engine.search_prefiltered_shared(&q, opts, Some(&lsei), 1, cache, &off);
        let plain = engine.search_prefiltered(&q, opts, &lsei, 1);
        assert_eq!(first.ranked, plain.ranked);
        assert!(first.stats.sigma_computed() > 0);
        assert!(!first.stats.degraded);

        // Second identical request: served entirely from the shared memo.
        let second = engine.search_prefiltered_shared(&q, opts, Some(&lsei), 1, cache, &off);
        assert_eq!(second.ranked, first.ranked);
        assert_eq!(second.stats.sigma_computed(), 0);
        assert_eq!(second.stats.sigma_hit_rate(), 1.0);

        // Missing index: complete ranking, marked as the fallback rung.
        let fallback =
            engine.search_prefiltered_shared::<TypeSigner<'_>>(&q, opts, None, 1, cache, &off);
        assert!(fallback.stats.degraded);
        assert!(fallback.stats.degraded_reason.lsei_fallback);
        assert_eq!(fallback.ranked, engine.search(&q, opts).ranked);
    }

    #[test]
    fn traced_search_matches_untraced_and_records_the_pipeline() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let cfg = LshConfig::new(32, 8);
        let signer = TypeSigner::new(&g, TypeFilter::none(), cfg, 7);
        let lsei = Lsei::build(&lake, signer, cfg, LseiMode::Entity);
        let q = Query::single(vec![players[0]]);
        let opts = SearchOptions {
            threads: 2,
            ..SearchOptions::top(2)
        };

        let plain = engine.search_prefiltered(&q, opts, &lsei, 1);
        let trace = thetis_obs::QueryTrace::forced(0xABCD);
        let traced = engine.search_prefiltered_traced(&q, opts, &lsei, 1, &trace);
        assert_eq!(plain.ranked, traced.ranked);

        let events = trace.events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "lsei.prefilter",
            "lsei.lookup",
            "lsei.admit",
            "hungarian.map",
            "semrel.tuple",
            "score.table",
            "sigma.cache",
            "search.result",
            "core.search",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        // Ranked results round-trip through the trace in rank order.
        let results: Vec<_> = events
            .iter()
            .filter(|e| e.name == "search.result")
            .collect();
        assert_eq!(results.len(), traced.ranked.len());
        for (i, (r, &(tid, score))) in results.iter().zip(&traced.ranked).enumerate() {
            assert_eq!(r.attr_u64("rank"), Some(i as u64 + 1));
            assert_eq!(r.attr_u64("table"), Some(tid.0 as u64));
            assert_eq!(r.attr_f64("score"), Some(score));
        }
        // The whole export survives a JSON round trip.
        let parsed = thetis_obs::parse_trace_json(&trace.to_json()).expect("parses");
        assert_eq!(parsed.events, events);

        // A disabled trace records nothing and does not perturb results.
        let off = thetis_obs::QueryTrace::disabled();
        let silent = engine.search_prefiltered_traced(&q, opts, &lsei, 1, &off);
        assert_eq!(silent.ranked, plain.ranked);
        assert!(off.is_empty());
    }

    #[test]
    fn pruning_is_reported_in_stats() {
        let (g, lake, players, _) = fixture();
        let engine = ThetisEngine::new(&g, &lake, TypeJaccard::new(&g));
        let q = Query::single(vec![players[0]]);
        let res = engine.search(&q, SearchOptions::top(1));
        // With k = 1 the exact-match table (score 1.0) is found first and
        // every other table's bound is below it.
        assert_eq!(res.ranked[0].0, TableId(0));
        assert!(res.stats.tables_pruned() > 0);
        assert_eq!(
            res.stats.tables_scored + res.stats.tables_pruned(),
            lake.len()
        );
    }
}
