//! Thetis core: the semantic table search of §4–§6 of
//! *"Fantastic Tables and Where to Find Them"* (EDBT 2025).
//!
//! Given a query of entity tuples and a semantic data lake
//! `(D, G, Φ)`, rank every table `T ∈ D` by
//!
//! ```text
//! SemRel_MAX(Q, T) = (1/|Q|) · Σ_{t_q ∈ Q} max-mapping score of t_q in T
//! ```
//!
//! where each query tuple is scored against a table by
//!
//! 1. assigning query entities to table columns with the **Hungarian
//!    method** so the summed column-relevance is maximal ([`mapping`]),
//! 2. scoring each row with an entity similarity `σ` ([`similarity`]:
//!    adjusted type-Jaccard or embedding cosine),
//! 3. aggregating row scores per query entity (max or average,
//!    [`semrel::RowAgg`]),
//! 4. converting the informativeness-weighted Euclidean distance from the
//!    perfect match into a similarity via `1 / (D_I + 1)` ([`semrel`]).
//!
//! [`engine::ThetisEngine`] packages the whole pipeline — with optional LSEI
//! prefiltering (§6) and parallel table scoring — behind one API. Scoring
//! cost is further cut by a query-scoped σ memo ([`cache`]) and by
//! upper-bound pruning ([`search::upper_bound_score`]) that skips the
//! Hungarian mapping for tables that cannot reach the current top-k floor;
//! both are on by default and never change the ranking.

pub mod axioms;
pub mod cache;
pub mod engine;
pub mod explain;
pub mod hungarian;
pub mod informativeness;
pub mod mapping;
pub mod query;
pub mod relaxation;
pub mod search;
pub mod semrel;
pub mod sigma;
pub mod similarity;
pub mod topk;

pub use cache::{
    CacheStats, CachedSimilarity, CountingSimilarity, SharedSimilarityCache, SimilarityCache,
};
pub use engine::{DegradedReasons, SearchOptions, SearchResult, SearchStats, ThetisEngine};
pub use explain::{explain, EntityMatch, Explanation, TupleExplanation};
pub use informativeness::Informativeness;
pub use query::{EntityTuple, Query};
pub use relaxation::{search_with_relaxation, RelaxationConfig, RelaxedSearch};
pub use search::{Schedule, ScoreTimings};
pub use semrel::RowAgg;
pub use sigma::SigmaRows;
pub use similarity::{
    EmbeddingCosine, EntitySimilarity, NeighborhoodJaccard, PredicateJaccard, SigmaKernel,
    TypeJaccard,
};
