//! Bounded top-k collection by score.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(score, item)` pair ordered by score, then by item as a deterministic
/// tie-break. Stored inverted so the binary heap pops the *minimum*.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinEntry<T> {
    score: f64,
    item: T,
}

impl<T: Ord + Eq> Eq for MinEntry<T> {}

impl<T: Ord + Eq> PartialOrd for MinEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord + Eq> Ord for MinEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) keeps the smallest on top.
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// Collects the `k` highest-scoring items.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<MinEntry<T>>,
}

impl<T: Ord + Eq + Copy> TopK<T> {
    /// Creates a collector for the top `k` items.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item; it is kept only while among the best `k`.
    pub fn push(&mut self, item: T, score: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(MinEntry { score, item });
        } else if let Some(min) = self.heap.peek() {
            if score > min.score || (score == min.score && item > min.item) {
                self.heap.pop();
                self.heap.push(MinEntry { score, item });
            }
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Lowest score currently held, if any. Once `len() == k` this is the
    /// pruning floor: a candidate scoring strictly below it can never enter.
    pub fn min_score(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.score)
    }

    /// Whether no items are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning `(item, score)` pairs sorted by
    /// descending score (ties broken by descending item).
    pub fn into_sorted(self) -> Vec<(T, f64)> {
        let mut v: Vec<(T, f64)> = self.heap.into_iter().map(|e| (e.item, e.score)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_best() {
        let mut t = TopK::new(3);
        for (i, s) in [(1u32, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.2)] {
            t.push(i, s);
        }
        let out = t.into_sorted();
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![2, 4, 3]
        );
    }

    #[test]
    fn result_is_sorted_descending() {
        let mut t = TopK::new(10);
        for (i, s) in [(1u32, 0.3), (2, 0.8), (3, 0.1)] {
            t.push(i, s);
        }
        let out = t.into_sorted();
        assert!(out.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn fewer_items_than_k() {
        let mut t = TopK::new(5);
        t.push(1u32, 1.0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.into_sorted(), vec![(1, 1.0)]);
    }

    #[test]
    fn k_zero_accepts_nothing() {
        let mut t = TopK::new(0);
        t.push(1u32, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.min_score(), None);
    }

    #[test]
    fn min_score_tracks_the_weakest_entry() {
        let mut t = TopK::new(2);
        assert_eq!(t.min_score(), None);
        t.push(1u32, 0.4);
        assert_eq!(t.min_score(), Some(0.4));
        t.push(2, 0.9);
        assert_eq!(t.min_score(), Some(0.4));
        t.push(3, 0.6);
        assert_eq!(t.min_score(), Some(0.6));
    }

    #[test]
    fn ties_break_deterministically() {
        let mut a = TopK::new(2);
        let mut b = TopK::new(2);
        for &(i, s) in &[(1u32, 0.5), (2, 0.5), (3, 0.5)] {
            a.push(i, s);
        }
        for &(i, s) in &[(3u32, 0.5), (1, 0.5), (2, 0.5)] {
            b.push(i, s);
        }
        assert_eq!(a.into_sorted(), b.into_sorted());
    }

    #[test]
    fn equals_full_sort_prefix() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let items: Vec<(u32, f64)> = (0..200u32)
            .map(|i| (i, rng.random_range(0.0..1.0)))
            .collect();
        let mut topk = TopK::new(10);
        for &(i, s) in &items {
            topk.push(i, s);
        }
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| b.0.cmp(&a.0)));
        sorted.truncate(10);
        assert_eq!(topk.into_sorted(), sorted);
    }
}
