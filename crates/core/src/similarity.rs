//! Entity similarity scores `σ : N × N → [0, 1]` (§5.2–5.3).
//!
//! Three instantiations — the paper's two plus the alternative it points
//! to as future work:
//!
//! * [`TypeJaccard`] — the *adjusted* Jaccard of entity-type sets (Eq. 4):
//!   `1` for identical entities, otherwise the type-set Jaccard **capped at
//!   0.95**, so exact entity matches always dominate type-level matches;
//! * [`EmbeddingCosine`] — cosine similarity of RDF2Vec-style vectors,
//!   clamped to `[0, 1]` (negative cosine means "unrelated", not
//!   "anti-relevant", for relevance purposes);
//! * [`PredicateJaccard`] — Jaccard over the predicate vocabulary around
//!   each entity (§5.3's "similarity based on the set of predicates").

use thetis_embedding::{EmbeddingStore, F32Slab, I8Slab};
use thetis_kg::{entity::type_jaccard, EntityId, KnowledgeGraph};

/// Which arithmetic the σ kernel runs in (§16).
///
/// `F64Exact` is the bit-identical reference: scalar f32 rows with f64
/// accumulation, exactly the arithmetic every release before quantization
/// used. `F32` and `I8` select the quantized SoA slabs
/// ([`thetis_embedding::F32Slab`] / [`thetis_embedding::I8Slab`]), which
/// trade bounded numeric error for autovectorized throughput. Similarities
/// without an embedding payload (type/predicate/neighborhood Jaccard) are
/// exact integer-ratio computations and return identical values under
/// every kernel.
///
/// The kernel is part of the memoization identity: cached σ values are
/// keyed by `(a, b, kernel)` so values computed under one kernel are never
/// served to a search running another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SigmaKernel {
    /// Scalar f64-accumulated reference (bit-identical across releases).
    #[default]
    F64Exact,
    /// f32 SoA slab with precomputed inverse norms (chunked `mul_add`).
    F32,
    /// i8-quantized slab with per-row scales (i32 accumulation).
    I8,
}

impl SigmaKernel {
    /// All kernels, in reference-first order.
    pub const ALL: [SigmaKernel; 3] = [SigmaKernel::F64Exact, SigmaKernel::F32, SigmaKernel::I8];

    /// A short stable name ("f64" / "f32" / "i8") — used in CLI flags,
    /// wire requests, and bench report columns.
    pub fn name(self) -> &'static str {
        match self {
            SigmaKernel::F64Exact => "f64",
            SigmaKernel::F32 => "f32",
            SigmaKernel::I8 => "i8",
        }
    }

    /// Parses a kernel name as produced by [`SigmaKernel::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f64" => Some(SigmaKernel::F64Exact),
            "f32" => Some(SigmaKernel::F32),
            "i8" => Some(SigmaKernel::I8),
            _ => None,
        }
    }

    /// A stable one-byte tag for cache keys.
    #[inline]
    pub fn tag(self) -> u8 {
        match self {
            SigmaKernel::F64Exact => 0,
            SigmaKernel::F32 => 1,
            SigmaKernel::I8 => 2,
        }
    }
}

impl std::fmt::Display for SigmaKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An entity-to-entity semantic similarity in `[0, 1]` with `σ(e, e) = 1`.
///
/// Implementations must be cheap (`O(types)` or `O(dim)`) — Algorithm 1
/// evaluates `σ` once per (query entity, table cell) pair — and
/// **deterministic**: the engine memoizes values per entity pair in a
/// [`SimilarityCache`](crate::cache::SimilarityCache), so `sim(a, b)` must
/// return the same value every time for the same pair.
pub trait EntitySimilarity: Sync {
    /// The similarity of two entities.
    fn sim(&self, a: EntityId, b: EntityId) -> f64;

    /// The similarity of `a` against every entity of `bs`, written into
    /// `out` (`out.len() == bs.len()`). Must produce exactly the values
    /// [`EntitySimilarity::sim`] would — implementations may only hoist
    /// work common to `a` (its type set, its embedding row and norm), never
    /// change per-pair arithmetic, so batched and scalar paths stay
    /// bit-identical and cache-compatible.
    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        for (&b, o) in bs.iter().zip(out) {
            *o = self.sim(a, b);
        }
    }

    /// The similarity under an explicit [`SigmaKernel`]. Similarities
    /// without a quantizable payload ignore the kernel — their arithmetic
    /// is exact under every kernel — so the default forwards to
    /// [`EntitySimilarity::sim`]. [`EmbeddingCosine`] overrides this to
    /// dispatch into its quantized slabs.
    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        let _ = kernel;
        self.sim(a, b)
    }

    /// Batched form of [`EntitySimilarity::sim_kernel`]; the same
    /// bit-identity contract as [`EntitySimilarity::sim_batch`] holds
    /// *within* a kernel (batch bits == scalar bits for the same kernel).
    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        let _ = kernel;
        self.sim_batch(a, bs, out);
    }

    /// Heap bytes held by quantized slabs this similarity has built
    /// (0 for similarities without one) — surfaced in serve `stats`.
    fn slab_bytes(&self) -> usize {
        0
    }

    /// A short human-readable name ("types" / "embeddings").
    fn name(&self) -> &'static str;
}

impl<S: EntitySimilarity + ?Sized> EntitySimilarity for Box<S> {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        (**self).sim(a, b)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        (**self).sim_batch(a, bs, out);
    }

    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        (**self).sim_kernel(kernel, a, b)
    }

    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        (**self).sim_batch_kernel(kernel, a, bs, out);
    }

    fn slab_bytes(&self) -> usize {
        (**self).slab_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<S: EntitySimilarity + ?Sized> EntitySimilarity for &S {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        (**self).sim(a, b)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        (**self).sim_batch(a, bs, out);
    }

    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        (**self).sim_kernel(kernel, a, b)
    }

    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        (**self).sim_batch_kernel(kernel, a, bs, out);
    }

    fn slab_bytes(&self) -> usize {
        (**self).slab_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Capped Jaccard of two sorted, deduplicated `u32` sets — the shared
/// kernel of [`PredicateJaccard`] and [`NeighborhoodJaccard`].
#[inline]
fn sorted_jaccard(sa: &[u32], sb: &[u32], cap: f64) -> f64 {
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    (inter as f64 / union as f64).min(cap)
}

/// Adjusted Jaccard similarity over entity-type sets (Eq. 4).
pub struct TypeJaccard<'a> {
    graph: &'a KnowledgeGraph,
    cap: f64,
}

impl<'a> TypeJaccard<'a> {
    /// The paper's cap for non-identical entities.
    pub const DEFAULT_CAP: f64 = 0.95;

    /// Creates the similarity with the default 0.95 cap.
    pub fn new(graph: &'a KnowledgeGraph) -> Self {
        Self {
            graph,
            cap: Self::DEFAULT_CAP,
        }
    }

    /// Creates the similarity with a custom cap in `[0, 1]`.
    pub fn with_cap(graph: &'a KnowledgeGraph, cap: f64) -> Self {
        assert!((0.0..=1.0).contains(&cap), "cap must be in [0, 1]");
        Self { graph, cap }
    }
}

impl EntitySimilarity for TypeJaccard<'_> {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        let j = type_jaccard(self.graph.types_of(a), self.graph.types_of(b));
        j.min(self.cap)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let ta = self.graph.types_of(a);
        for (&b, o) in bs.iter().zip(out) {
            *o = if a == b {
                1.0
            } else {
                type_jaccard(ta, self.graph.types_of(b)).min(self.cap)
            };
        }
    }

    fn name(&self) -> &'static str {
        "types"
    }
}

/// Jaccard similarity over the sets of *predicates* surrounding an entity
/// (its outgoing edge labels) — the alternative relevance signal §5.3
/// points to ([Mottin et al., exemplar queries]): two entities play a
/// similar role if the graph talks about them in the same vocabulary.
///
/// Precomputes each entity's sorted predicate set once; like
/// [`TypeJaccard`], non-identical entities are capped below 1.
pub struct PredicateJaccard {
    predicate_sets: Vec<Vec<u32>>,
    cap: f64,
}

impl PredicateJaccard {
    /// Builds the per-entity predicate sets from `graph`.
    pub fn new(graph: &KnowledgeGraph) -> Self {
        let mut predicate_sets = Vec::with_capacity(graph.entity_count());
        for e in graph.entity_ids() {
            let mut preds: Vec<u32> = graph
                .neighbors(e)
                .iter()
                .map(|edge| edge.predicate.0)
                .collect();
            preds.sort_unstable();
            preds.dedup();
            predicate_sets.push(preds);
        }
        Self {
            predicate_sets,
            cap: TypeJaccard::DEFAULT_CAP,
        }
    }
}

impl EntitySimilarity for PredicateJaccard {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        sorted_jaccard(
            &self.predicate_sets[a.index()],
            &self.predicate_sets[b.index()],
            self.cap,
        )
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let sa = &self.predicate_sets[a.index()];
        for (&b, o) in bs.iter().zip(out) {
            *o = if a == b {
                1.0
            } else {
                sorted_jaccard(sa, &self.predicate_sets[b.index()], self.cap)
            };
        }
    }

    fn name(&self) -> &'static str {
        "predicates"
    }
}

/// Jaccard similarity over bounded graph neighborhoods: two entities are
/// similar when the graph connects them to the same entities (§3.3's
/// proximity-based relevance family). Neighborhoods are precomputed once
/// per entity (undirected, up to `depth` hops), so `σ` stays a linear
/// merge at query time.
pub struct NeighborhoodJaccard {
    neighborhoods: Vec<Vec<u32>>,
    cap: f64,
}

impl NeighborhoodJaccard {
    /// Precomputes all neighborhoods of `graph` up to `depth` hops.
    pub fn new(graph: &KnowledgeGraph, depth: u32) -> Self {
        let reverse = thetis_kg::paths::ReverseAdjacency::build(graph);
        let neighborhoods = graph
            .entity_ids()
            .map(|e| {
                let mut n: Vec<u32> = thetis_kg::paths::neighborhood(graph, &reverse, e, depth)
                    .into_iter()
                    .map(|x| x.0)
                    .collect();
                n.sort_unstable();
                n
            })
            .collect();
        Self {
            neighborhoods,
            cap: TypeJaccard::DEFAULT_CAP,
        }
    }
}

impl EntitySimilarity for NeighborhoodJaccard {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        sorted_jaccard(
            &self.neighborhoods[a.index()],
            &self.neighborhoods[b.index()],
            self.cap,
        )
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        let sa = &self.neighborhoods[a.index()];
        for (&b, o) in bs.iter().zip(out) {
            *o = if a == b {
                1.0
            } else {
                sorted_jaccard(sa, &self.neighborhoods[b.index()], self.cap)
            };
        }
    }

    fn name(&self) -> &'static str {
        "neighborhoods"
    }
}

/// Entities degraded to σ = 0 because the embedding store had no vector
/// for them (or the `embedding.missing` failpoint simulated that).
static OBS_EMBEDDING_MISSING: thetis_obs::Counter = thetis_obs::Counter::new("embedding.missing");

/// Cosine similarity of entity embeddings, clamped to `[0, 1]`.
///
/// An entity the store has no vector for — a KG newer than the embedding
/// snapshot — degrades every pair involving it to σ = 0 (the paper's
/// partial-mapping semantics: an unmatched position contributes nothing)
/// instead of indexing out of bounds. Identity still scores 1. Each
/// degraded lookup bumps the `embedding.missing` counter; the
/// `embedding.missing` failpoint simulates the condition in chaos runs.
pub struct EmbeddingCosine<'a> {
    store: &'a EmbeddingStore,
    /// Quantized slabs, built lazily on first use of the matching kernel
    /// and reused for the lifetime of this similarity. The store is
    /// immutable behind the shared borrow, so a slab never goes stale.
    f32_slab: std::sync::OnceLock<F32Slab>,
    i8_slab: std::sync::OnceLock<I8Slab>,
}

impl<'a> EmbeddingCosine<'a> {
    /// Creates the similarity over `store`.
    pub fn new(store: &'a EmbeddingStore) -> Self {
        Self {
            store,
            f32_slab: std::sync::OnceLock::new(),
            i8_slab: std::sync::OnceLock::new(),
        }
    }

    /// The f32 slab, built on first use.
    fn f32_slab(&self) -> &F32Slab {
        self.f32_slab
            .get_or_init(|| F32Slab::from_store(self.store))
    }

    /// The i8 slab, built on first use.
    fn i8_slab(&self) -> &I8Slab {
        self.i8_slab.get_or_init(|| I8Slab::from_store(self.store))
    }

    /// Eagerly builds the slabs a kernel needs (normally they build
    /// lazily on first σ; servers call this at startup so the first
    /// request doesn't pay the one-time cost).
    pub fn warm(&self, kernel: SigmaKernel) {
        match kernel {
            SigmaKernel::F64Exact => {}
            SigmaKernel::F32 => {
                self.f32_slab();
            }
            SigmaKernel::I8 => {
                self.i8_slab();
            }
        }
    }

    /// Whether `e` has a usable vector: present in the store and not
    /// knocked out by the `embedding.missing` failpoint.
    fn resolvable(&self, e: EntityId) -> bool {
        if !self.store.contains(e)
            || matches!(
                thetis_obs::faults::check("embedding.missing"),
                Some(thetis_obs::faults::FaultAction::Error)
                    | Some(thetis_obs::faults::FaultAction::Corrupt)
            )
        {
            if thetis_obs::enabled() {
                OBS_EMBEDDING_MISSING.inc();
            }
            return false;
        }
        true
    }
}

impl EntitySimilarity for EmbeddingCosine<'_> {
    fn sim(&self, a: EntityId, b: EntityId) -> f64 {
        if a == b {
            return 1.0;
        }
        if !self.resolvable(a) || !self.resolvable(b) {
            return 0.0;
        }
        self.store.cosine(a, b).max(0.0)
    }

    fn sim_batch(&self, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        debug_assert_eq!(bs.len(), out.len());
        // Fast path: the whole batch resolves, so the fused kernel's bits
        // are untouched on healthy runs.
        if self.resolvable(a) && bs.iter().all(|&b| self.resolvable(b)) {
            self.store.cosine_batch(a, bs, out);
            for (&b, o) in bs.iter().zip(out) {
                *o = if a == b { 1.0 } else { o.max(0.0) };
            }
            return;
        }
        for (&b, o) in bs.iter().zip(out) {
            *o = self.sim(a, b);
        }
    }

    fn sim_kernel(&self, kernel: SigmaKernel, a: EntityId, b: EntityId) -> f64 {
        if kernel == SigmaKernel::F64Exact {
            return self.sim(a, b);
        }
        // Identity, missing-vector degradation, and the failpoint behave
        // exactly like the reference kernel; only resolvable non-identical
        // pairs dispatch into the quantized slab.
        if a == b {
            return 1.0;
        }
        if !self.resolvable(a) || !self.resolvable(b) {
            return 0.0;
        }
        match kernel {
            SigmaKernel::F64Exact => unreachable!(),
            SigmaKernel::F32 => self.f32_slab().cosine(a, b).max(0.0),
            SigmaKernel::I8 => self.i8_slab().cosine(a, b).max(0.0),
        }
    }

    fn sim_batch_kernel(&self, kernel: SigmaKernel, a: EntityId, bs: &[EntityId], out: &mut [f64]) {
        if kernel == SigmaKernel::F64Exact {
            self.sim_batch(a, bs, out);
            return;
        }
        debug_assert_eq!(bs.len(), out.len());
        if self.resolvable(a) && bs.iter().all(|&b| self.resolvable(b)) {
            match kernel {
                SigmaKernel::F64Exact => unreachable!(),
                SigmaKernel::F32 => self.f32_slab().cosine_batch(a, bs, out),
                SigmaKernel::I8 => self.i8_slab().cosine_batch(a, bs, out),
            }
            for (&b, o) in bs.iter().zip(out) {
                *o = if a == b { 1.0 } else { o.max(0.0) };
            }
            return;
        }
        for (&b, o) in bs.iter().zip(out) {
            *o = self.sim_kernel(kernel, a, b);
        }
    }

    fn slab_bytes(&self) -> usize {
        self.f32_slab.get().map_or(0, F32Slab::bytes) + self.i8_slab.get().map_or(0, I8Slab::bytes)
    }

    fn name(&self) -> &'static str {
        "embeddings"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_kg::KgBuilder;

    fn graph() -> (KnowledgeGraph, EntityId, EntityId, EntityId) {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let player = b.add_type("BaseballPlayer", Some(thing));
        let actor = b.add_type("Actor", Some(thing));
        let p1 = b.add_entity("p1", vec![player]);
        let p2 = b.add_entity("p2", vec![player]);
        let a1 = b.add_entity("a1", vec![actor]);
        (b.freeze(), p1, p2, a1)
    }

    #[test]
    fn identical_entity_scores_one() {
        let (g, p1, _, _) = graph();
        let s = TypeJaccard::new(&g);
        assert_eq!(s.sim(p1, p1), 1.0);
    }

    #[test]
    fn same_types_cap_at_095() {
        let (g, p1, p2, _) = graph();
        let s = TypeJaccard::new(&g);
        // identical type sets → Jaccard 1.0 → capped
        assert_eq!(s.sim(p1, p2), 0.95);
    }

    #[test]
    fn related_types_score_between() {
        let (g, p1, _, a1) = graph();
        let s = TypeJaccard::new(&g);
        // share {Thing} of {Thing, Player} ∪ {Thing, Actor} → 1/3
        let v = s.sim(p1, a1);
        assert!((v - 1.0 / 3.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn custom_cap_applies() {
        let (g, p1, p2, _) = graph();
        let s = TypeJaccard::with_cap(&g, 0.5);
        assert_eq!(s.sim(p1, p2), 0.5);
        assert_eq!(s.sim(p1, p1), 1.0);
    }

    #[test]
    fn predicate_jaccard_uses_edge_vocabulary() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let e1 = b.add_entity("e1", vec![thing]);
        let e2 = b.add_entity("e2", vec![thing]);
        let e3 = b.add_entity("e3", vec![thing]);
        let target = b.add_entity("t", vec![thing]);
        let plays = b.add_predicate("playsFor");
        let born = b.add_predicate("bornIn");
        let acts = b.add_predicate("actsIn");
        // e1, e2 share the {playsFor, bornIn} vocabulary; e3 differs.
        b.add_edge(e1, plays, target);
        b.add_edge(e1, born, target);
        b.add_edge(e2, plays, target);
        b.add_edge(e2, born, target);
        b.add_edge(e3, acts, target);
        let g = b.freeze();
        let s = PredicateJaccard::new(&g);
        assert_eq!(s.sim(e1, e1), 1.0);
        assert_eq!(s.sim(e1, e2), 0.95); // identical vocabulary, capped
        assert_eq!(s.sim(e1, e3), 0.0);
        // Entities with no edges are maximally uninformative.
        assert_eq!(s.sim(target, target), 1.0);
        assert_eq!(s.sim(target, e1), 0.0);
        assert_eq!(s.name(), "predicates");
    }

    #[test]
    fn neighborhood_jaccard_reflects_shared_context() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let p1 = b.add_entity("p1", vec![thing]);
        let p2 = b.add_entity("p2", vec![thing]);
        let p3 = b.add_entity("p3", vec![thing]);
        let team_a = b.add_entity("team_a", vec![thing]);
        let team_b = b.add_entity("team_b", vec![thing]);
        let plays = b.add_predicate("playsFor");
        // p1, p2 play for team_a; p3 for team_b.
        b.add_edge(p1, plays, team_a);
        b.add_edge(p2, plays, team_a);
        b.add_edge(p3, plays, team_b);
        let g = b.freeze();
        let s = NeighborhoodJaccard::new(&g, 1);
        // p1 and p2 share their whole 1-hop neighborhood {team_a}.
        assert_eq!(s.sim(p1, p2), 0.95);
        // p1 and p3 share nothing at depth 1.
        assert_eq!(s.sim(p1, p3), 0.0);
        // At depth 2, p1's neighborhood gains p2 (via team_a): sim drops
        // below the cap but stays positive against p2.
        let s2 = NeighborhoodJaccard::new(&g, 2);
        let v = s2.sim(p1, p2);
        assert!(v > 0.0 && v < 0.95, "depth-2 sim {v}");
        assert_eq!(s.name(), "neighborhoods");
    }

    fn assert_batch_matches_scalar<S: EntitySimilarity>(s: &S, n: u32) {
        let bs: Vec<EntityId> = (0..n).map(EntityId).collect();
        let mut out = vec![0.0f64; bs.len()];
        for a in 0..n {
            let a = EntityId(a);
            s.sim_batch(a, &bs, &mut out);
            for (&b, &got) in bs.iter().zip(&out) {
                assert_eq!(
                    got.to_bits(),
                    s.sim(a, b).to_bits(),
                    "{}: batch diverges at ({a:?}, {b:?})",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn sim_batch_is_bit_identical_to_scalar_for_all_similarities() {
        let mut b = KgBuilder::new();
        let thing = b.add_type("Thing", None);
        let player = b.add_type("Player", Some(thing));
        let actor = b.add_type("Actor", Some(thing));
        let e0 = b.add_entity("e0", vec![player]);
        let e1 = b.add_entity("e1", vec![player, actor]);
        let e2 = b.add_entity("e2", vec![actor]);
        let e3 = b.add_entity("e3", vec![]);
        let plays = b.add_predicate("playsFor");
        let born = b.add_predicate("bornIn");
        b.add_edge(e0, plays, e3);
        b.add_edge(e1, plays, e3);
        b.add_edge(e1, born, e2);
        b.add_edge(e2, born, e0);
        let g = b.freeze();
        let n = g.entity_count() as u32;

        assert_batch_matches_scalar(&TypeJaccard::new(&g), n);
        assert_batch_matches_scalar(&PredicateJaccard::new(&g), n);
        assert_batch_matches_scalar(&NeighborhoodJaccard::new(&g, 2), n);

        let mut store = EmbeddingStore::zeros(n as usize, 3);
        for i in 0..n {
            let v = [(i as f32) - 1.5, 0.5, -(i as f32) * 0.25];
            store.get_mut(EntityId(i)).copy_from_slice(&v);
        }
        assert_batch_matches_scalar(&EmbeddingCosine::new(&store), n);
    }

    #[test]
    fn embedding_cosine_clamps_negative() {
        let mut store = EmbeddingStore::zeros(2, 2);
        store.get_mut(EntityId(0)).copy_from_slice(&[1.0, 0.0]);
        store.get_mut(EntityId(1)).copy_from_slice(&[-1.0, 0.0]);
        let s = EmbeddingCosine::new(&store);
        assert_eq!(s.sim(EntityId(0), EntityId(1)), 0.0);
        assert_eq!(s.sim(EntityId(0), EntityId(0)), 1.0);
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in SigmaKernel::ALL {
            assert_eq!(SigmaKernel::parse(k.name()), Some(k));
        }
        assert_eq!(SigmaKernel::parse("f16"), None);
        assert_eq!(SigmaKernel::default(), SigmaKernel::F64Exact);
        assert_eq!(format!("{}", SigmaKernel::F32), "f32");
    }

    fn kernel_test_store(n: u32, dim: usize) -> EmbeddingStore {
        let mut store = EmbeddingStore::zeros(n as usize, dim);
        for i in 0..n {
            let row = store.get_mut(EntityId(i));
            for (j, x) in row.iter_mut().enumerate() {
                *x = (((i as usize * 31 + j * 17) % 23) as f32 - 11.0) / 7.0;
            }
        }
        store
    }

    #[test]
    fn f64_kernel_is_bit_identical_to_plain_sim() {
        let store = kernel_test_store(6, 13);
        let s = EmbeddingCosine::new(&store);
        for a in 0..6u32 {
            for b in 0..6u32 {
                let (a, b) = (EntityId(a), EntityId(b));
                assert_eq!(
                    s.sim_kernel(SigmaKernel::F64Exact, a, b).to_bits(),
                    s.sim(a, b).to_bits()
                );
            }
        }
    }

    #[test]
    fn quantized_kernels_track_reference_within_bounds() {
        let dim = 13;
        let store = kernel_test_store(6, dim);
        let s = EmbeddingCosine::new(&store);
        let i8_bound = 4.0 * (dim as f64).sqrt() / 254.0 + 1e-3;
        for a in 0..6u32 {
            for b in 0..6u32 {
                let (a, b) = (EntityId(a), EntityId(b));
                let want = s.sim(a, b);
                let f = s.sim_kernel(SigmaKernel::F32, a, b);
                let q = s.sim_kernel(SigmaKernel::I8, a, b);
                assert!((f - want).abs() < 1e-5, "f32 {f} vs {want}");
                assert!((q - want).abs() <= i8_bound, "i8 {q} vs {want}");
            }
        }
    }

    #[test]
    fn kernel_batches_are_bit_identical_to_kernel_scalars() {
        let store = kernel_test_store(6, 13);
        let s = EmbeddingCosine::new(&store);
        let bs: Vec<EntityId> = (0..6u32).map(EntityId).collect();
        let mut out = vec![0.0f64; bs.len()];
        for k in SigmaKernel::ALL {
            for a in 0..6u32 {
                let a = EntityId(a);
                s.sim_batch_kernel(k, a, &bs, &mut out);
                for (&b, &got) in bs.iter().zip(&out) {
                    assert_eq!(
                        got.to_bits(),
                        s.sim_kernel(k, a, b).to_bits(),
                        "kernel {k} diverges at ({a:?}, {b:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_kernels_degrade_missing_entities_like_reference() {
        let store = kernel_test_store(2, 4);
        let s = EmbeddingCosine::new(&store);
        let missing = EntityId(7);
        for k in [SigmaKernel::F32, SigmaKernel::I8] {
            assert_eq!(s.sim_kernel(k, EntityId(0), missing), 0.0);
            assert_eq!(s.sim_kernel(k, missing, EntityId(0)), 0.0);
            assert_eq!(s.sim_kernel(k, missing, missing), 1.0);
            let bs = [EntityId(1), missing, EntityId(0)];
            let mut out = [f64::NAN; 3];
            s.sim_batch_kernel(k, EntityId(0), &bs, &mut out);
            assert_eq!(
                out[0].to_bits(),
                s.sim_kernel(k, EntityId(0), EntityId(1)).to_bits()
            );
            assert_eq!(out[1], 0.0);
            assert_eq!(out[2], 1.0);
        }
    }

    #[test]
    fn slab_bytes_counts_only_built_slabs() {
        let store = kernel_test_store(4, 8);
        let s = EmbeddingCosine::new(&store);
        assert_eq!(s.slab_bytes(), 0);
        s.warm(SigmaKernel::F32);
        let f32_bytes = 4 * 8 * 4 + 4 * 4;
        assert_eq!(s.slab_bytes(), f32_bytes);
        s.warm(SigmaKernel::I8);
        assert_eq!(s.slab_bytes(), f32_bytes + 4 * 8 + 4 * 8);
        // Non-embedding similarities hold no slab under any kernel.
        let (g, p1, p2, _) = graph();
        let tj = TypeJaccard::new(&g);
        assert_eq!(tj.slab_bytes(), 0);
        assert_eq!(
            tj.sim_kernel(SigmaKernel::I8, p1, p2).to_bits(),
            tj.sim(p1, p2).to_bits()
        );
    }

    #[test]
    fn embedding_cosine_degrades_missing_entities_to_zero() {
        // A KG newer than the embedding snapshot: entity 5 has no vector.
        let mut store = EmbeddingStore::zeros(2, 2);
        store.get_mut(EntityId(0)).copy_from_slice(&[1.0, 0.0]);
        store.get_mut(EntityId(1)).copy_from_slice(&[1.0, 0.0]);
        let s = EmbeddingCosine::new(&store);
        let missing = EntityId(5);
        assert_eq!(s.sim(EntityId(0), missing), 0.0);
        assert_eq!(s.sim(missing, EntityId(0)), 0.0);
        // Identity degrades gracefully too, but still scores 1: the entity
        // is "itself" regardless of whether a vector exists for it.
        assert_eq!(s.sim(missing, missing), 1.0);
        // Batch with a missing entity mixed in: present pairs keep their
        // exact bits, the missing one degrades to 0.
        let bs = [EntityId(1), missing, EntityId(0)];
        let mut out = [f64::NAN; 3];
        s.sim_batch(EntityId(0), &bs, &mut out);
        assert_eq!(out[0].to_bits(), s.sim(EntityId(0), EntityId(1)).to_bits());
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 1.0);
    }
}
