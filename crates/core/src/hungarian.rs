//! The Hungarian method (Kuhn–Munkres with potentials, `O(n²m)`) for the
//! query-entity → column assignment of §5.1.
//!
//! The paper assigns each query entity to a distinct table column so that
//! the summed column-relevance score is **maximized**. We implement the
//! classic minimization algorithm over the negated score matrix and expose
//! a maximization wrapper for rectangular matrices: when the query has more
//! entities than the table has columns, the surplus entities stay
//! unassigned (their coordinate in the SemRel space is 0).

/// Solves `max Σ score[i][assign(i)]` with all-distinct `assign` over a
/// `k × n` score matrix.
///
/// Returns `(assignment, total)` where `assignment[i]` is the column of row
/// `i` (or `None` when `k > n` and row `i` lost out).
///
/// # Panics
/// Panics if rows have inconsistent lengths or scores are not finite.
pub fn max_assignment(scores: &[Vec<f64>]) -> (Vec<Option<usize>>, f64) {
    let k = scores.len();
    if k == 0 {
        return (Vec::new(), 0.0);
    }
    let n = scores[0].len();
    assert!(
        scores.iter().all(|r| r.len() == n),
        "score matrix must be rectangular"
    );
    if n == 0 {
        return (vec![None; k], 0.0);
    }
    assert!(
        scores.iter().flatten().all(|s| s.is_finite()),
        "scores must be finite"
    );

    // Pad to a square `dim × dim` minimization problem. Dummy rows/columns
    // carry cost 0 so they never perturb real assignments.
    let dim = k.max(n);
    let mut cost = vec![vec![0.0f64; dim + 1]; dim + 1];
    for (i, row) in scores.iter().enumerate() {
        for (j, &s) in row.iter().enumerate() {
            cost[i + 1][j + 1] = -s;
        }
    }

    // Kuhn–Munkres with row/column potentials (e-maxx formulation, 1-based).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; dim + 1];
    let mut v = vec![0.0f64; dim + 1];
    let mut matched_row = vec![0usize; dim + 1]; // matched_row[j] = row in col j
    let mut way = vec![0usize; dim + 1];
    for i in 1..=dim {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; dim + 1];
        let mut used = vec![false; dim + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=dim {
                if !used[j] {
                    let cur = cost[i0][j] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=dim {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; k];
    let mut total = 0.0;
    for j in 1..=dim {
        let i = matched_row[j];
        if i >= 1 && i <= k && j <= n {
            assignment[i - 1] = Some(j - 1);
            total += scores[i - 1][j - 1];
        }
    }
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum over all injective row→column assignments.
    fn brute_force(scores: &[Vec<f64>]) -> f64 {
        let n = scores[0].len();
        let cols: Vec<usize> = (0..n).collect();
        let mut best = f64::NEG_INFINITY;
        // permutations of column subsets of size min(k, n)
        fn rec(scores: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == scores.len() {
                *best = (*best).max(acc);
                return;
            }
            // option: leave row unassigned only if rows > cols overall; to
            // keep the oracle simple we allow skipping any row — the optimum
            // never skips when scores are non-negative.
            let n = scores[row].len();
            let assigned_possible = used.iter().filter(|&&u| !u).count() > 0;
            if !assigned_possible {
                rec(scores, row + 1, used, acc, best);
                return;
            }
            rec(scores, row + 1, used, acc, best);
            for j in 0..n {
                if !used[j] {
                    used[j] = true;
                    rec(scores, row + 1, used, acc + scores[row][j], best);
                    used[j] = false;
                }
            }
        }
        let mut used = vec![false; cols.len()];
        rec(scores, 0, &mut used, 0.0, &mut best);
        best
    }

    #[test]
    fn simple_square_case() {
        // Optimal: row0→col1 (5), row1→col0 (4) = 9; greedy would pick 6+1=7.
        let s = vec![vec![6.0, 5.0], vec![4.0, 1.0]];
        let (assign, total) = max_assignment(&s);
        assert_eq!(total, 9.0);
        assert_eq!(assign, vec![Some(1), Some(0)]);
    }

    #[test]
    fn wide_matrix_leaves_columns_unused() {
        let s = vec![vec![1.0, 9.0, 2.0]];
        let (assign, total) = max_assignment(&s);
        assert_eq!(assign, vec![Some(1)]);
        assert_eq!(total, 9.0);
    }

    #[test]
    fn tall_matrix_leaves_rows_unassigned() {
        let s = vec![vec![5.0], vec![7.0], vec![1.0]];
        let (assign, total) = max_assignment(&s);
        assert_eq!(total, 7.0);
        assert_eq!(assign.iter().flatten().count(), 1);
        assert_eq!(assign[1], Some(0));
    }

    #[test]
    fn assignment_is_injective() {
        let s = vec![
            vec![0.9, 0.9, 0.1],
            vec![0.9, 0.8, 0.2],
            vec![0.5, 0.5, 0.5],
        ];
        let (assign, _) = max_assignment(&s);
        let mut cols: Vec<usize> = assign.iter().flatten().copied().collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn zero_sized_inputs() {
        assert_eq!(max_assignment(&[]).1, 0.0);
        let (assign, total) = max_assignment(&[vec![], vec![]]);
        assert_eq!(assign, vec![None, None]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..200 {
            let k = rng.random_range(1..=4);
            let n = rng.random_range(1..=4);
            let scores: Vec<Vec<f64>> = (0..k)
                .map(|_| (0..n).map(|_| rng.random_range(0.0..1.0)).collect())
                .collect();
            let (_, total) = max_assignment(&scores);
            let expected = brute_force(&scores);
            assert!(
                (total - expected).abs() < 1e-9,
                "trial {trial}: hungarian {total} != brute force {expected} on {scores:?}"
            );
        }
    }
}
