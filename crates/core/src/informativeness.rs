//! Informativeness weights `I : N → [0, 1]` (§5.2).
//!
//! Entities that occur in many tables (a popular team) discriminate less
//! than rare ones (a specific player), so the weighted Euclidean distance
//! of Eq. 2 scales each query-entity dimension by an inverse-frequency
//! weight. We use the standard smoothed IDF normalized into `(0, 1]`:
//!
//! ```text
//! I(e) = ln(1 + N / tf(e)) / ln(1 + N)
//! ```
//!
//! where `N` is the number of tables and `tf(e)` the number of tables
//! containing `e`. Entities absent from the corpus get weight 1 (maximally
//! informative: nothing in the lake dilutes them).

use std::collections::HashMap;

use thetis_datalake::DataLake;
use thetis_kg::EntityId;

/// Precomputed informativeness weights.
#[derive(Debug, Clone)]
pub struct Informativeness {
    weights: HashMap<EntityId, f64>,
    default: f64,
}

impl Informativeness {
    /// Uniform weights: every entity counts 1 (unweighted Eq. 2).
    pub fn uniform() -> Self {
        Self {
            weights: HashMap::new(),
            default: 1.0,
        }
    }

    /// Builds IDF-style weights from the lake's entity→table postings.
    ///
    /// Requires fresh postings (see [`DataLake::rebuild_postings`]).
    pub fn from_lake(lake: &DataLake) -> Self {
        let n = lake.len() as f64;
        if n == 0.0 {
            return Self::uniform();
        }
        let norm = (1.0 + n).ln();
        let weights = lake
            .postings()
            .iter()
            .map(|(&e, tables)| {
                let tf = tables.len() as f64;
                (e, (1.0 + n / tf).ln() / norm)
            })
            .collect();
        Self {
            weights,
            default: 1.0,
        }
    }

    /// The weight of entity `e`.
    #[inline]
    pub fn weight(&self, e: EntityId) -> f64 {
        self.weights.get(&e).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_datalake::{CellValue, Table};

    fn linked(e: u32) -> CellValue {
        CellValue::LinkedEntity {
            mention: format!("e{e}"),
            entity: EntityId(e),
        }
    }

    fn lake() -> DataLake {
        // entity 1 in all 4 tables, entity 2 in exactly one.
        let tables = (0..4)
            .map(|i| {
                let mut t = Table::new(format!("t{i}"), vec!["a".into(), "b".into()]);
                t.push_row(vec![
                    linked(1),
                    if i == 0 { linked(2) } else { CellValue::Null },
                ]);
                t
            })
            .collect();
        DataLake::from_tables(tables)
    }

    #[test]
    fn rare_entities_weigh_more() {
        let i = Informativeness::from_lake(&lake());
        let frequent = i.weight(EntityId(1));
        let rare = i.weight(EntityId(2));
        assert!(rare > frequent, "rare {rare} vs frequent {frequent}");
    }

    #[test]
    fn weights_are_bounded() {
        let i = Informativeness::from_lake(&lake());
        for e in [EntityId(1), EntityId(2), EntityId(99)] {
            let w = i.weight(e);
            assert!(w > 0.0 && w <= 1.0, "weight {w} out of range");
        }
    }

    #[test]
    fn unseen_entities_get_max_weight() {
        let i = Informativeness::from_lake(&lake());
        assert_eq!(i.weight(EntityId(1234)), 1.0);
    }

    #[test]
    fn entity_in_every_table_has_expected_idf() {
        let i = Informativeness::from_lake(&lake());
        // tf = N = 4: ln(2) / ln(5)
        let expected = 2.0f64.ln() / 5.0f64.ln();
        assert!((i.weight(EntityId(1)) - expected).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights_are_one() {
        let i = Informativeness::uniform();
        assert_eq!(i.weight(EntityId(0)), 1.0);
    }
}
