//! Mapping classification (§4.2): total/partial × exact/related mappings.
//!
//! Given a query tuple `t_Q` and a target tuple `t_T`, the paper
//! distinguishes four relevance cases and states three axioms that any
//! SemRel instantiation must satisfy. This module classifies tuple pairs so
//! the axioms can be *tested* against our score (see `tests/axioms.rs` in
//! the repository root for the property-based verification).

use std::collections::HashSet;

use crate::hungarian::max_assignment;
use crate::query::EntityTuple;
use crate::similarity::EntitySimilarity;

/// The mapping category of a (query, target) tuple pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// All query entities appear verbatim in the target (`t_Q ≈TE t_T`).
    TotalExact,
    /// Some but not all query entities appear verbatim (`t_Q ≈PE t_T`).
    PartialExact,
    /// Every query entity has a (σ > 0) related partner under an injective
    /// mapping (`t_Q ≈TR t_T`).
    TotalRelated,
    /// Only a subset of query entities has related partners (`t_Q ≈PR t_T`).
    PartialRelated,
    /// No query entity has any related partner: the target is irrelevant.
    Irrelevant,
}

/// Classifies the pair according to §4.2.
///
/// Exactness is checked set-wise; relatedness uses the maximum-cardinality
/// injective mapping induced by σ (computed via the Hungarian method on the
/// similarity matrix, which maximizes total σ and therefore also matches
/// every entity that *can* be matched when σ is non-negative).
pub fn classify(
    query: &EntityTuple,
    target: &EntityTuple,
    sim: &dyn EntitySimilarity,
) -> MappingKind {
    if query.is_empty() {
        return MappingKind::Irrelevant;
    }
    let target_set: HashSet<_> = target.iter().copied().collect();
    let exact_count = query.iter().filter(|e| target_set.contains(e)).count();
    if exact_count == query.len() {
        return MappingKind::TotalExact;
    }

    // Injective related mapping via max-sum assignment over σ.
    let matrix: Vec<Vec<f64>> = query
        .iter()
        .map(|&eq| target.iter().map(|&et| sim.sim(eq, et)).collect())
        .collect();
    let (assign, _) = max_assignment(&matrix);
    let related_count = assign
        .iter()
        .enumerate()
        .filter(|&(i, a)| a.is_some_and(|j| matrix[i][j] > 0.0))
        .count();

    if related_count == query.len() {
        // Note: a pair can be both partially exact and totally related; the
        // paper treats such pairs as total related mappings (§4.2).
        MappingKind::TotalRelated
    } else if exact_count > 0 {
        MappingKind::PartialExact
    } else if related_count > 0 {
        MappingKind::PartialRelated
    } else {
        MappingKind::Irrelevant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::TypeJaccard;
    use thetis_kg::{EntityId, KgBuilder, KnowledgeGraph};

    /// Mirrors the paper's running example: players, teams, cities, and an
    /// unrelated actor type that shares no types with the rest
    /// (not even a common root, so cross-kind σ is 0).
    fn graph() -> (KnowledgeGraph, Vec<EntityId>, Vec<EntityId>, EntityId) {
        let mut b = KgBuilder::new();
        let player = b.add_type("Player", None);
        let team = b.add_type("Team", None);
        let actor = b.add_type("Actor", None);
        let players = (0..3)
            .map(|i| b.add_entity(&format!("p{i}"), vec![player]))
            .collect();
        let teams = (0..3)
            .map(|i| b.add_entity(&format!("t{i}"), vec![team]))
            .collect();
        let a = b.add_entity("actor", vec![actor]);
        (b.freeze(), players, teams, a)
    }

    #[test]
    fn total_exact_when_all_entities_present() {
        let (g, p, t, _) = graph();
        let sim = TypeJaccard::new(&g);
        let q = vec![p[0], t[0]];
        assert_eq!(
            classify(&q, &vec![p[0], t[0], t[1]], &sim),
            MappingKind::TotalExact
        );
    }

    #[test]
    fn partial_exact_requires_missing_related_partner() {
        let (g, p, _, actor) = graph();
        let sim = TypeJaccard::new(&g);
        // p0 exact; actor has no partner (no shared types with anything).
        let q = vec![p[0], actor];
        assert_eq!(
            classify(&q, &vec![p[0], p[1]], &sim),
            MappingKind::PartialExact
        );
    }

    #[test]
    fn total_related_when_every_entity_has_partner() {
        let (g, p, t, _) = graph();
        let sim = TypeJaccard::new(&g);
        let q = vec![p[0], t[0]];
        assert_eq!(
            classify(&q, &vec![p[1], t[1]], &sim),
            MappingKind::TotalRelated
        );
        // Mixed exact + related is still total related (paper's t1 ≈TR t2).
        assert_eq!(
            classify(&q, &vec![p[0], t[1]], &sim),
            MappingKind::TotalRelated
        );
    }

    #[test]
    fn partial_related_when_subset_has_partners() {
        let (g, p, _, actor) = graph();
        let sim = TypeJaccard::new(&g);
        let q = vec![p[0], actor];
        assert_eq!(
            classify(&q, &vec![p[1], p[2]], &sim),
            MappingKind::PartialRelated
        );
    }

    #[test]
    fn irrelevant_when_no_partner_exists() {
        let (g, p, t, actor) = graph();
        let sim = TypeJaccard::new(&g);
        assert_eq!(
            classify(&vec![actor], &vec![p[0], t[0]], &sim),
            MappingKind::Irrelevant
        );
        assert_eq!(
            classify(&vec![], &vec![p[0]], &sim),
            MappingKind::Irrelevant
        );
    }

    #[test]
    fn injectivity_blocks_double_mapping() {
        let (g, p, _, actor) = graph();
        let sim = TypeJaccard::new(&g);
        // Two query players but only one target player: μ is injective, so
        // only one can map → not total related.
        let q = vec![p[0], p[1]];
        let kind = classify(&q, &vec![p[2], actor], &sim);
        assert_eq!(kind, MappingKind::PartialRelated);
    }
}
