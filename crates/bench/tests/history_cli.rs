//! End-to-end tests of the `bench_history` binary's edge cases: an empty
//! or unreadable snapshot directory must be reported gracefully, never
//! panic, and only the genuinely broken case may exit nonzero.

use std::process::Command;

fn bench_history() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_history"))
}

/// Regression: an existing directory with no `BENCH_*.json` files used to
/// be treated as a failure. It is the normal state of a fresh checkout —
/// the tool must say so and exit zero.
#[test]
fn empty_results_directory_reports_no_benchmark_files_and_succeeds() {
    let dir = std::env::temp_dir().join("thetis-bench-history-empty");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    // A non-matching file must not count as a snapshot either.
    std::fs::write(dir.join("README.txt"), "not a snapshot").unwrap();

    let out = bench_history()
        .args(["--dir", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "empty history is not an error: {stderr}"
    );
    assert!(stdout.contains("no benchmark files"), "{stdout}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

/// A directory that does not exist at all stays a hard, contextual error.
#[test]
fn missing_results_directory_is_a_contextual_error() {
    let dir = std::env::temp_dir().join("thetis-bench-history-no-such-dir");
    let _ = std::fs::remove_dir_all(&dir);

    let out = bench_history()
        .args(["--dir", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

/// A corrupt snapshot is skipped with a warning; with nothing else to
/// show, the run still lands on the graceful empty-history path.
#[test]
fn corrupt_only_snapshot_is_skipped_and_reported_as_empty() {
    let dir = std::env::temp_dir().join("thetis-bench-history-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("BENCH_broken.json"), "{ not json").unwrap();

    let out = bench_history()
        .args(["--dir", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("skipping"), "{stderr}");
    assert!(stdout.contains("no benchmark files"), "{stdout}");
}
