//! Golden regression test: a fixed-seed tiny WT2015 benchmark with pinned
//! retrieval quality for STST, with and without LSEI prefiltering.
//!
//! The pinned numbers are produced by this repository's vendored
//! deterministic RNG (xoshiro256++ seeded via SplitMix64) — any change to
//! the corpus generator, the scoring pipeline, or the LSEI index that
//! shifts retrieval quality shows up here as an exact-value mismatch.
//! Scoring optimizations (σ memoization, upper-bound pruning) must NOT
//! move these numbers: the optimized path is ranking-identical by design.

use thetis::prelude::*;
use thetis_bench::methods::{prefiltered_report, semantic_report_opts, Sim};
use thetis_bench::BenchData;

const TOL: f64 = 1e-12;

fn data() -> BenchData {
    // Same fixed configuration as the harness tests: WT2015 scaled to
    // 0.0004 with 4 queries per set. Fully deterministic.
    BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4)
}

#[test]
fn stst_brute_force_quality_is_pinned() {
    let d = data();
    let q = &d.bench.queries1;
    let gt = &d.bench.gt1;
    for options in [SearchOptions::top(100), SearchOptions::exhaustive(100)] {
        let (r, _) = semantic_report_opts(&d, Sim::Types, "STST", q, gt, options);
        assert!(
            (r.mean_ndcg10 - GOLDEN_BRUTE_NDCG10).abs() < TOL,
            "STST NDCG@10 drifted: got {:.17}, pinned {:.17}",
            r.mean_ndcg10,
            GOLDEN_BRUTE_NDCG10
        );
        assert!(
            (r.mean_recall100 - GOLDEN_BRUTE_RECALL100).abs() < TOL,
            "STST recall@100 drifted: got {:.17}, pinned {:.17}",
            r.mean_recall100,
            GOLDEN_BRUTE_RECALL100
        );
    }
}

#[test]
fn stst_prefiltered_quality_is_pinned() {
    let d = data();
    let q = &d.bench.queries1;
    let gt = &d.bench.gt1;
    let (r, stats) = prefiltered_report(&d, Sim::Types, LshConfig::new(32, 8), 1, q, gt, 100);
    assert!(
        (r.mean_ndcg10 - GOLDEN_PRE_NDCG10).abs() < TOL,
        "prefiltered STST NDCG@10 drifted: got {:.17}, pinned {:.17}",
        r.mean_ndcg10,
        GOLDEN_PRE_NDCG10
    );
    assert!(
        (r.mean_recall100 - GOLDEN_PRE_RECALL100).abs() < TOL,
        "prefiltered STST recall@100 drifted: got {:.17}, pinned {:.17}",
        r.mean_recall100,
        GOLDEN_PRE_RECALL100
    );
    assert!(
        (stats.mean_reduction - GOLDEN_PRE_REDUCTION).abs() < TOL,
        "LSEI search-space reduction drifted: got {:.17}, pinned {:.17}",
        stats.mean_reduction,
        GOLDEN_PRE_REDUCTION
    );
}

/// Quality drift allowed for the f32 SoA kernel vs the pinned f64 STSE
/// reference. σ error is ≤ dim·ε_f32 (~1e-5 at dim 64), which only moves
/// retrieval metrics when it flips a near-tie in the ranking.
const F32_QUALITY_TOL: f64 = 0.02;
/// Quality drift allowed for the i8 kernel (σ error ≤ 4·√dim/254 ≈ 0.13
/// at dim 64 — coarse enough to reorder close scores, not to break
/// retrieval).
const I8_QUALITY_TOL: f64 = 0.05;

#[test]
fn stse_quality_is_pinned_and_quantized_kernels_stay_within_tolerance() {
    let d = data();
    let q = &d.bench.queries1;
    let gt = &d.bench.gt1;
    // The default path and the explicit f64 kernel are the same code: both
    // must hit the pinned values exactly.
    for options in [
        SearchOptions::top(100),
        SearchOptions::top(100).with_kernel(SigmaKernel::F64Exact),
    ] {
        let (r, _) = semantic_report_opts(&d, Sim::Embeddings, "STSE", q, gt, options);
        assert!(
            (r.mean_ndcg10 - GOLDEN_STSE_NDCG10).abs() < TOL,
            "STSE f64 NDCG@10 drifted: got {:.17}, pinned {:.17}",
            r.mean_ndcg10,
            GOLDEN_STSE_NDCG10
        );
        assert!(
            (r.mean_recall100 - GOLDEN_STSE_RECALL100).abs() < TOL,
            "STSE f64 recall@100 drifted: got {:.17}, pinned {:.17}",
            r.mean_recall100,
            GOLDEN_STSE_RECALL100
        );
    }
    // Quantized kernels trade σ precision for speed; retrieval quality
    // must stay within the per-kernel tolerance of the f64 reference.
    for (kernel, tol) in [
        (SigmaKernel::F32, F32_QUALITY_TOL),
        (SigmaKernel::I8, I8_QUALITY_TOL),
    ] {
        let (r, _) = semantic_report_opts(
            &d,
            Sim::Embeddings,
            "STSE",
            q,
            gt,
            SearchOptions::top(100).with_kernel(kernel),
        );
        assert!(
            (r.mean_ndcg10 - GOLDEN_STSE_NDCG10).abs() <= tol,
            "STSE {kernel} NDCG@10 left its tolerance: got {:.17}, \
             f64 reference {:.17}, tol {tol}",
            r.mean_ndcg10,
            GOLDEN_STSE_NDCG10
        );
        assert!(
            (r.mean_recall100 - GOLDEN_STSE_RECALL100).abs() <= tol,
            "STSE {kernel} recall@100 left its tolerance: got {:.17}, \
             f64 reference {:.17}, tol {tol}",
            r.mean_recall100,
            GOLDEN_STSE_RECALL100
        );
    }
}

// Pinned against the vendored RNG; regenerate by running this test with
// `GOLDEN_PRINT=1` and copying the printed values.
const GOLDEN_BRUTE_NDCG10: f64 = 0.8123244334835918;
const GOLDEN_BRUTE_RECALL100: f64 = 1.0;
const GOLDEN_PRE_NDCG10: f64 = 0.8123244334835918;
const GOLDEN_PRE_RECALL100: f64 = 0.7178700328759291;
const GOLDEN_PRE_REDUCTION: f64 = 0.531578947368421;
const GOLDEN_STSE_NDCG10: f64 = 0.8309360576430003;
const GOLDEN_STSE_RECALL100: f64 = 1.0;

#[test]
fn print_golden_values() {
    if std::env::var("GOLDEN_PRINT").is_err() {
        return;
    }
    let d = data();
    let q = &d.bench.queries1;
    let gt = &d.bench.gt1;
    let (b, _) = semantic_report_opts(&d, Sim::Types, "STST", q, gt, SearchOptions::top(100));
    let (p, s) = prefiltered_report(&d, Sim::Types, LshConfig::new(32, 8), 1, q, gt, 100);
    let (e, _) = semantic_report_opts(&d, Sim::Embeddings, "STSE", q, gt, SearchOptions::top(100));
    println!("GOLDEN_BRUTE_NDCG10: f64 = {:?};", b.mean_ndcg10);
    println!("GOLDEN_BRUTE_RECALL100: f64 = {:?};", b.mean_recall100);
    println!("GOLDEN_PRE_NDCG10: f64 = {:?};", p.mean_ndcg10);
    println!("GOLDEN_PRE_RECALL100: f64 = {:?};", p.mean_recall100);
    println!("GOLDEN_PRE_REDUCTION: f64 = {:?};", s.mean_reduction);
    println!("GOLDEN_STSE_NDCG10: f64 = {:?};", e.mean_ndcg10);
    println!("GOLDEN_STSE_RECALL100: f64 = {:?};", e.mean_recall100);
}
