//! End-to-end tests for the `bench_gate` CI binary.
//!
//! The gate must degrade gracefully — warn and pass — when the committed
//! baseline is missing (first run on a fresh branch), and must still be
//! strict about its own argument contract and genuine regressions.

use std::path::PathBuf;
use std::process::{Command, Output};

use thetis_bench::BenchReport;

fn gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("bench_gate should spawn")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("thetis-gate-{}-{tag}.json", std::process::id()))
}

fn write_report(tag: &str, wall_seconds: f64) -> PathBuf {
    let report = BenchReport {
        experiment: "gate-test".into(),
        scale: 1.0,
        n_queries: 1,
        wall_seconds,
        counters: Vec::new(),
        spans: Vec::new(),
        histograms: Vec::new(),
        windows: Vec::new(),
    };
    let path = temp_path(tag);
    std::fs::write(&path, serde_json::to_string(&report).unwrap()).unwrap();
    path
}

#[test]
fn missing_baseline_warns_and_passes() {
    let current = write_report("missing-base-cur", 1.0);
    let out = run(gate()
        .arg("--baseline")
        .arg("/nonexistent/thetis/BENCH_none.json")
        .arg("--current")
        .arg(&current));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "missing baseline must pass, got {:?}: {stderr}",
        out.status
    );
    assert!(stderr.contains("no usable baseline"), "{stderr}");
    assert!(stderr.contains("passing"), "{stderr}");
    std::fs::remove_file(current).ok();
}

#[test]
fn missing_current_is_a_hard_error() {
    let baseline = write_report("missing-cur-base", 1.0);
    let out = run(gate()
        .arg("--baseline")
        .arg(&baseline)
        .arg("--current")
        .arg("/nonexistent/thetis/BENCH_none.json"));
    assert!(!out.status.success(), "missing current report must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read current report"), "{stderr}");
    std::fs::remove_file(baseline).ok();
}

#[test]
fn missing_required_flag_is_a_usage_error() {
    let out = run(gate().arg("--current").arg("whatever.json"));
    assert!(!out.status.success(), "missing --baseline must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--baseline is required"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn wall_time_regression_fails_and_parity_passes() {
    let baseline = write_report("reg-base", 1.0);
    let slow = write_report("reg-slow", 2.0);
    let out = run(gate()
        .arg("--baseline")
        .arg(&baseline)
        .arg("--current")
        .arg(&slow));
    assert!(!out.status.success(), "100% regression must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wall time regressed"), "{stderr}");

    let same = write_report("reg-same", 1.0);
    let out = run(gate()
        .arg("--baseline")
        .arg(&baseline)
        .arg("--current")
        .arg(&same));
    assert!(out.status.success(), "parity run must pass the gate");
    for p in [baseline, slow, same] {
        std::fs::remove_file(p).ok();
    }
}
