//! The Thetis benchmark harness: one module per paper artifact.
//!
//! Every table and figure of the paper's evaluation (§7) has a function
//! here that regenerates it on a scaled corpus; the `reproduce` binary
//! exposes them as subcommands, and the Criterion benches in `benches/`
//! micro-benchmark the hot paths behind them.
//!
//! | artifact | module |
//! |----------|--------|
//! | Table 2 (corpus statistics)             | [`experiments::table2`] |
//! | Figure 4 (NDCG@10, all methods)         | [`experiments::fig4`] |
//! | Figure 5 (recall@100/200, STSTC/STSEC)  | [`experiments::fig5`] |
//! | Table 3 (runtime by LSH config)         | [`experiments::table3`] |
//! | Table 4 (search-space reduction)        | [`experiments::table3`] |
//! | §7.3 scoring-cost breakdown             | [`experiments::scoring_cost`] |
//! | §7.4 synthetic scaling                  | [`experiments::scaling`] |
//! | §7.4 WT2019 / GitTables                 | [`experiments::other_corpora`] |
//! | Figure 6 (NDCG vs link coverage)        | [`experiments::fig6`] |
//! | Row-aggregation ablation (§7.2)         | [`experiments::ablations`] |
//! | BM25-as-prefilter ablation (§7.3)       | [`experiments::ablations`] |
//! | Noisy-linker robustness (§7.5)          | [`experiments::ablations`] |

pub mod context;
pub mod experiments;
pub mod methods;
pub mod telemetry;

pub use context::{BenchData, Ctx};
pub use telemetry::{record_window_series, write_bench_report, BenchReport, WindowPoint};
