//! Experiments on the extensions the paper leaves as future work (§8):
//!
//! * **similarity ablation** — all four `σ` instantiations (types,
//!   embeddings, predicates, graph neighborhoods) head to head;
//! * **query relaxation** — recovering recall on over-specialized 5-tuple
//!   queries by dropping low-informativeness entities.

use serde::Serialize;
use thetis::core::relaxation::{search_with_relaxation, RelaxationConfig};
use thetis::core::NeighborhoodJaccard;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;

#[derive(Serialize)]
struct SimRow {
    query_set: &'static str,
    sim: &'static str,
    mean_ndcg10: f64,
    mean_seconds: f64,
}

/// Compares the four σ instantiations on WT2015.
pub fn sim_ablation(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let graph = &data.bench.kg.graph;
    let mut rows = Vec::new();

    // Build each similarity once (some precompute per-entity state).
    let predicates = PredicateJaccard::new(graph);
    let neighborhoods = NeighborhoodJaccard::new(graph, 1);

    for (query_set, queries, gt) in [
        ("1-tuple", &data.bench.queries1, &data.bench.gt1),
        ("5-tuple", &data.bench.queries5, &data.bench.gt5),
    ] {
        let mut run = |name: &'static str, report: MethodReport| {
            rows.push(SimRow {
                query_set,
                sim: name,
                mean_ndcg10: report.mean_ndcg10,
                mean_seconds: report.mean_seconds,
            });
        };
        let types_engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
        run(
            "types",
            MethodReport::run("types", queries, gt, |q| {
                types_engine
                    .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                    .table_ids()
            }),
        );
        let emb_engine =
            ThetisEngine::new(graph, &data.bench.lake, EmbeddingCosine::new(&data.store));
        run(
            "embeddings",
            MethodReport::run("embeddings", queries, gt, |q| {
                emb_engine
                    .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                    .table_ids()
            }),
        );
        let pred_engine = ThetisEngine::new(graph, &data.bench.lake, &predicates);
        run(
            "predicates",
            MethodReport::run("predicates", queries, gt, |q| {
                pred_engine
                    .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                    .table_ids()
            }),
        );
        let nbr_engine = ThetisEngine::new(graph, &data.bench.lake, &neighborhoods);
        run(
            "neighborhoods",
            MethodReport::run("neighborhoods", queries, gt, |q| {
                nbr_engine
                    .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                    .table_ids()
            }),
        );
    }
    ctx.write_json("sim_ablation", &rows);
    let table = format_table(
        "Similarity ablation (§8 future work): NDCG@10 per σ instantiation",
        &["queries", "σ", "NDCG@10", "runtime"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    format!("{:.3}", r.mean_ndcg10),
                    thetis::eval::report::fmt_secs(r.mean_seconds),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[derive(Serialize)]
struct RelaxRow {
    query_set: &'static str,
    mode: &'static str,
    mean_ndcg10: f64,
    mean_recall100: f64,
    relaxed_queries: usize,
}

/// Measures query relaxation on over-specialized queries: 5-tuple queries
/// widened with a hub (city) entity that no table column carries.
pub fn relaxation(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let graph = &data.bench.kg.graph;
    let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));

    // Over-specialize each query: append a hub entity to every tuple.
    let hubs = &data.bench.kg.hubs;
    let overspec: Vec<BenchQuery> = data
        .bench
        .queries5
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let mut q = q.clone();
            for t in &mut q.tuples {
                t.push(hubs[i % hubs.len()]);
            }
            q
        })
        .collect();

    let mut rows = Vec::new();
    let gt = &data.bench.gt5;

    let strict = MethodReport::run("strict", &overspec, gt, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });
    rows.push(RelaxRow {
        query_set: "5-tuple + hub",
        mode: "strict",
        mean_ndcg10: strict.mean_ndcg10,
        mean_recall100: strict.mean_recall100,
        relaxed_queries: 0,
    });

    let mut relaxed_count = 0usize;
    let cfg = RelaxationConfig {
        score_target: 0.9,
        min_results: 3,
        max_drops: 2,
    };
    let relaxed = MethodReport::run("relaxed", &overspec, gt, |q| {
        let out = search_with_relaxation(
            &engine,
            &Query::new(q.tuples.clone()),
            SearchOptions::top(100),
            &cfg,
        );
        if out.rounds > 0 {
            relaxed_count += 1;
        }
        out.result.table_ids()
    });
    rows.push(RelaxRow {
        query_set: "5-tuple + hub",
        mode: "relaxed",
        mean_ndcg10: relaxed.mean_ndcg10,
        mean_recall100: relaxed.mean_recall100,
        relaxed_queries: relaxed_count,
    });

    // Reference: the original (not over-specialized) 5-tuple queries.
    let reference = MethodReport::run("original", &data.bench.queries5, gt, |q| {
        engine
            .search(&Query::new(q.tuples.clone()), SearchOptions::top(100))
            .table_ids()
    });
    rows.push(RelaxRow {
        query_set: "5-tuple",
        mode: "original",
        mean_ndcg10: reference.mean_ndcg10,
        mean_recall100: reference.mean_recall100,
        relaxed_queries: 0,
    });

    ctx.write_json("relaxation", &rows);
    let table = format_table(
        "Query relaxation (§8 future work): over-specialized queries recover quality",
        &["queries", "mode", "NDCG@10", "recall@100", "#relaxed"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.mode.to_string(),
                    format!("{:.3}", r.mean_ndcg10),
                    format!("{:.3}", r.mean_recall100),
                    r.relaxed_queries.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_ctx(tag: &str) -> Ctx {
        let dir = std::env::temp_dir().join(format!("thetis-ext-{tag}"));
        Ctx::new(0.0004, 3, dir)
    }

    #[test]
    fn sim_ablation_covers_all_four_sigmas() {
        let ctx = mini_ctx("sim");
        let table = sim_ablation(&ctx);
        for sigma in ["types", "embeddings", "predicates", "neighborhoods"] {
            assert!(table.contains(sigma), "missing σ {sigma} in report");
        }
    }

    #[test]
    fn relaxation_experiment_relaxes_overspecialized_queries() {
        let ctx = mini_ctx("relax");
        let table = relaxation(&ctx);
        assert!(table.contains("relaxed"));
        assert!(table.contains("strict"));
    }
}
