//! Figure 4: NDCG@10 on WT2015 for brute-force STST/STSE, the six LSH
//! prefiltering configurations, BM25 text queries, and union search.

use serde::Serialize;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{bm25_report, prefiltered_report, semantic_report, union_report, Sim};

#[derive(Serialize)]
struct Row {
    query_set: &'static str,
    method: String,
    mean_ndcg10: f64,
    q1: f64,
    median: f64,
    q3: f64,
}

fn eval_query_set(
    ctx: &Ctx,
    rows: &mut Vec<Row>,
    query_set: &'static str,
    queries: &[BenchQuery],
    gt: &GroundTruth,
) {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut push = |r: &MethodReport| {
        let (q1, median, q3) = r.ndcg10_quartiles;
        rows.push(Row {
            query_set,
            method: r.name.clone(),
            mean_ndcg10: r.mean_ndcg10,
            q1,
            median,
            q3,
        });
    };
    // Brute force (Figure 4 a, g).
    push(&semantic_report(
        &data,
        Sim::Types,
        queries,
        gt,
        10,
        RowAgg::Max,
    ));
    push(&semantic_report(
        &data,
        Sim::Embeddings,
        queries,
        gt,
        10,
        RowAgg::Max,
    ));
    // LSH configurations (Figure 4 b, c, e, f, h, i, k, l), 1 vote.
    for sim in [Sim::Types, Sim::Embeddings] {
        for cfg in LshConfig::paper_configs() {
            let (r, _) = prefiltered_report(&data, sim, cfg, 1, queries, gt, 10);
            push(&r);
        }
    }
    // Query-side column aggregation (§6.2): one merged LSEI lookup.
    for sim in [Sim::Types, Sim::Embeddings] {
        let (r, _) = crate::methods::prefiltered_aggregated_report(
            &data,
            sim,
            LshConfig::recommended(),
            1,
            queries,
            gt,
            10,
        );
        push(&r);
    }
    // Competitors.
    push(&bm25_report(&data, queries, gt, 10));
    push(&union_report(
        &data,
        UnionVariant::Embedding,
        queries,
        gt,
        10,
    ));
    push(&union_report(&data, UnionVariant::Strict, queries, gt, 10));
}

/// Regenerates Figure 4 (as a table of boxplot statistics).
pub fn run(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut rows = Vec::new();
    eval_query_set(
        ctx,
        &mut rows,
        "1-tuple",
        &data.bench.queries1,
        &data.bench.gt1,
    );
    eval_query_set(
        ctx,
        &mut rows,
        "5-tuple",
        &data.bench.queries5,
        &data.bench.gt5,
    );
    ctx.write_json("fig4", &rows);
    let table = format_table(
        "Figure 4: NDCG@10 on WT2015 (mean and quartiles over queries)",
        &["queries", "method", "mean", "q1", "median", "q3"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.method.clone(),
                    format!("{:.3}", r.mean_ndcg10),
                    format!("{:.3}", r.q1),
                    format!("{:.3}", r.median),
                    format!("{:.3}", r.q3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
