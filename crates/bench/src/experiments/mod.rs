//! One module per reproduced paper artifact; see the crate docs for the
//! artifact → module map.

pub mod ablations;
pub mod delta;
pub mod extensions;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod other_corpora;
pub mod scaling;
pub mod scoring_cost;
pub mod serve_bench;
pub mod smoke;
pub mod table2;
pub mod table3;
