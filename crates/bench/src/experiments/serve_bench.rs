//! `serve` — open-loop QPS/latency benchmark of the resident query
//! service.
//!
//! Drives the same tiny demo lake `thetis-cli serve --demo` loads with a
//! Poisson-ish open-loop arrival process (exponential inter-arrivals from
//! a seeded RNG): request send times are fixed up front, so a slow server
//! visibly inflates latency instead of silently slowing the offered load.
//! Two phases of equal size run back to back over the same query mix, so
//! the second phase measures the warmed shared σ memo — its per-response
//! `sigma_hit_rate` must come back above zero.
//!
//! By default the server runs in-process (same construction as the CLI).
//! With `--connect ADDR` the bench drives an externally started
//! `thetis-cli serve` instead — that is how the CI serve-smoke job wires
//! it up — and only client-side metrics are recorded.
//!
//! Client latencies land in the `serve.client_latency` histogram, which
//! the enclosing `reproduce` run snapshots into `BENCH_serve.json`;
//! `bench_gate --p99-threshold` gates its p99 against the committed
//! baseline.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::Serialize;
use thetis::prelude::*;
use thetis::serve::{Request, Response};

use crate::context::Ctx;

/// Total requests across both phases (phase 2 repeats the phase-1 mix).
const TOTAL_REQUESTS: usize = 240;

/// Offered load of the open-loop schedule, requests per second.
const TARGET_QPS: f64 = 200.0;

/// Concurrent client connections.
const CLIENTS: usize = 4;

/// Mutations per server in the WAL-overhead microbench.
const WAL_BENCH_MUTATIONS: usize = 24;

/// Client-observed request latency (send to response line).
static OBS_CLIENT_LATENCY: thetis::obs::Histogram =
    thetis::obs::Histogram::new("serve.client_latency");

/// Client-observed mutation commit latency without a journal.
static OBS_MUTATION_WAL_OFF: thetis::obs::Histogram =
    thetis::obs::Histogram::new("serve.mutation_commit_wal_off");

/// Client-observed mutation commit latency with write-ahead journaling
/// (append + fsync before publish).
static OBS_MUTATION_WAL_ON: thetis::obs::Histogram =
    thetis::obs::Histogram::new("serve.mutation_commit_wal_on");

#[derive(Serialize)]
struct ServeSummary {
    requests: usize,
    ok: usize,
    overloaded: usize,
    errors: usize,
    clients: usize,
    offered_qps: f64,
    achieved_qps: f64,
    p50_micros: u64,
    p99_micros: u64,
    phase2_mean_sigma_hit_rate: f64,
    server_cache_hit_rate: f64,
    server_cache_invalidations: u64,
    mutation_commit_wal_off_us: f64,
    mutation_commit_wal_on_us: f64,
    wal_overhead_ratio: f64,
}

struct Outcome {
    ok: bool,
    overloaded: bool,
    latency_ns: u64,
    sigma_hit_rate: f64,
}

/// Runs the open-loop serve benchmark.
pub fn run(ctx: &Ctx) -> String {
    // The demo world, identical to `thetis-cli serve --demo`.
    let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
    let graph = bench.kg.graph;
    let mut lake = bench.lake;
    ExactLabelLinker::new(&graph).link_lake(&mut lake);
    let specs: Vec<String> = bench
        .queries1
        .iter()
        .chain(bench.queries5.iter())
        .map(|q| {
            q.tuples
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&e| graph.label(e).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect();
    assert!(!specs.is_empty(), "demo bench produced no queries");

    // The target: an external server (CI) or an in-process one (local).
    let mut local = None;
    let addr: String = match &ctx.connect {
        Some(addr) => {
            wait_for_server(addr);
            addr.clone()
        }
        None => {
            let server = thetis::serve::Server::new(
                graph,
                lake,
                None,
                thetis::serve::ServerConfig {
                    threads: 1,
                    // Admission control is exercised by the e2e tests; the
                    // bench wants every scheduled request answered even on
                    // single-core runners (CI passes --max-inflight too).
                    max_inflight: CLIENTS * 2,
                    ..Default::default()
                },
            );
            let running = thetis::serve::serve(server).expect("bind loopback server");
            let addr = running.addr().to_string();
            local = Some(running);
            addr
        }
    };
    eprintln!(
        "[serve] {} requests at {TARGET_QPS} req/s over {CLIENTS} clients -> {addr} ({})",
        TOTAL_REQUESTS,
        if ctx.connect.is_some() {
            "external"
        } else {
            "in-process"
        }
    );

    // Fixed open-loop schedule: exponential inter-arrivals, seeded.
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut offsets = Vec::with_capacity(TOTAL_REQUESTS);
    let mut at = 0.0f64;
    for _ in 0..TOTAL_REQUESTS {
        let u = (rng.next_u64() as f64 / u64::MAX as f64).max(1e-12);
        at += -u.ln() / TARGET_QPS;
        offsets.push(Duration::from_secs_f64(at));
    }

    let start = Instant::now();
    // Sample the server's rolling window while the load runs, so the
    // report carries the within-run latency trajectory next to the
    // end-of-run percentiles.
    let sampling = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let sampler = {
        let addr = addr.clone();
        let sampling = std::sync::Arc::clone(&sampling);
        std::thread::spawn(move || {
            let mut points = Vec::new();
            while sampling.load(std::sync::atomic::Ordering::Relaxed) {
                if let Some(snap) = query_metrics(&addr) {
                    points.push(crate::telemetry::WindowPoint {
                        t_ms: start.elapsed().as_millis() as u64,
                        qps: snap.qps,
                        p50_us: snap.p50_us,
                        p99_us: snap.p99_us,
                        window_requests: snap.window_requests,
                    });
                }
                std::thread::sleep(Duration::from_millis(250));
            }
            points
        })
    };
    let outcomes: Vec<Option<Outcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let addr = &addr;
                let specs = &specs;
                let offsets = &offsets;
                scope.spawn(move || {
                    // Retry with backoff: all clients dial at once, and an
                    // externally started server (CI) may still be binding.
                    let mut stream =
                        connect_with_retry(addr, Instant::now() + Duration::from_secs(30))
                            .expect("connect benchmark client");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut got = Vec::new();
                    for i in (client..TOTAL_REQUESTS).step_by(CLIENTS) {
                        if let Some(wait) = offsets[i].checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let req = Request::search(&specs[i % specs.len()]);
                        let mut line = serde_json::to_string(&req).expect("serialize request");
                        line.push('\n');
                        let sent = Instant::now();
                        let outcome = stream
                            .write_all(line.as_bytes())
                            .and_then(|_| {
                                let mut reply = String::new();
                                reader.read_line(&mut reply).map(|_| reply)
                            })
                            .ok()
                            .and_then(|reply| serde_json::from_str::<Response>(&reply).ok())
                            .map(|resp| {
                                let latency_ns = sent.elapsed().as_nanos() as u64;
                                OBS_CLIENT_LATENCY.observe_nanos(latency_ns);
                                Outcome {
                                    ok: resp.is_ok(),
                                    overloaded: resp.status == "overloaded",
                                    latency_ns,
                                    sigma_hit_rate: resp.sigma_hit_rate.unwrap_or(0.0),
                                }
                            });
                        got.push((i, outcome));
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<Option<Outcome>> = (0..TOTAL_REQUESTS).map(|_| None).collect();
        for h in handles {
            for (i, outcome) in h.join().expect("client thread") {
                all[i] = outcome;
            }
        }
        all
    });
    let wall = start.elapsed().as_secs_f64();
    sampling.store(false, std::sync::atomic::Ordering::Relaxed);
    let window_points = sampler.join().expect("sampler thread");
    let window_samples = window_points.len();
    crate::telemetry::record_window_series(window_points);

    // A final pre-expired-deadline probe: the server must degrade it
    // gracefully (partial ranking, reasons named) rather than erroring,
    // and must hand back the query id its slow-query log files it under.
    let probe = {
        let mut req = Request::search(&specs[0]);
        req.deadline_ms = Some(0);
        send_one(&addr, &req)
    };
    if let Some(probe) = &probe {
        assert!(
            probe.is_ok() && probe.degraded == Some(true),
            "deadline probe must degrade, not fail: {probe:?}"
        );
        assert!(
            probe.query_id.is_some(),
            "searches must answer with a query id: {probe:?}"
        );
    }

    // Server-side counters (works against both targets).
    let stats = query_stats(&addr);
    if let Some(running) = local.take() {
        running.shutdown();
    }

    // WAL overhead microbench: the same mutation stream against a
    // journal-off and a journal-on server, client-observed commit
    // latency. Journaled commits pay one append + fsync per mutation and
    // must stay O(table) — a blowup here means the journal started
    // rewriting the corpus.
    let (wal_off_us, wal_on_us) = mutation_commit_bench();
    let wal_ratio = wal_on_us / wal_off_us.max(1e-9);
    eprintln!(
        "[serve] mutation commit: {wal_off_us:.0}us wal-off, {wal_on_us:.0}us wal-on (x{wal_ratio:.2})"
    );

    let ok = outcomes
        .iter()
        .filter(|o| o.as_ref().is_some_and(|o| o.ok))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|o| o.as_ref().is_some_and(|o| o.overloaded))
        .count();
    let errors = TOTAL_REQUESTS - ok - overloaded;
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flatten()
        .filter(|o| o.ok)
        .map(|o| o.latency_ns)
        .collect();
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx] / 1_000
    };
    let phase2: Vec<f64> = outcomes
        .iter()
        .enumerate()
        .skip(TOTAL_REQUESTS / 2)
        .filter_map(|(_, o)| o.as_ref().filter(|o| o.ok).map(|o| o.sigma_hit_rate))
        .collect();
    let phase2_hit_rate = phase2.iter().sum::<f64>() / phase2.len().max(1) as f64;

    // The acceptance bar: the run is meaningless below these.
    assert!(
        ok >= 200,
        "only {ok}/{TOTAL_REQUESTS} requests succeeded (overloaded {overloaded}, errors {errors})"
    );
    assert!(
        phase2_hit_rate > 0.0,
        "warmed phase never hit the shared sigma memo"
    );

    let summary = ServeSummary {
        requests: TOTAL_REQUESTS,
        ok,
        overloaded,
        errors,
        clients: CLIENTS,
        offered_qps: TARGET_QPS,
        achieved_qps: ok as f64 / wall.max(1e-9),
        p50_micros: pct(0.50),
        p99_micros: pct(0.99),
        phase2_mean_sigma_hit_rate: phase2_hit_rate,
        server_cache_hit_rate: stats.as_ref().map_or(0.0, |s| s.cache_hit_rate),
        server_cache_invalidations: stats.as_ref().map_or(0, |s| s.cache_invalidations),
        mutation_commit_wal_off_us: wal_off_us,
        mutation_commit_wal_on_us: wal_on_us,
        wal_overhead_ratio: wal_ratio,
    };
    let line = format!(
        "serve: {}/{} ok ({} shed), {:.0} req/s achieved, p50 {}us p99 {}us, warm sigma hit rate {:.2}, wal commit x{:.2}, {window_samples} window sample(s)",
        summary.ok,
        summary.requests,
        summary.overloaded,
        summary.achieved_qps,
        summary.p50_micros,
        summary.p99_micros,
        summary.phase2_mean_sigma_hit_rate,
        summary.wal_overhead_ratio,
    );
    ctx.write_json(&format!("serve_summary{}", ctx.thread_suffix()), &summary);
    println!("{line}");
    line
}

/// Connects with capped exponential backoff (25ms doubling to 1s) until
/// the overall deadline, then returns the last connect error. Deflakes
/// the CI race where the bench dials before the background server binds.
fn connect_with_retry(addr: &str, deadline: Instant) -> std::io::Result<TcpStream> {
    let mut backoff = Duration::from_millis(25);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(e);
                }
                std::thread::sleep(backoff.min(deadline - now));
                backoff = (backoff * 2).min(Duration::from_secs(1));
            }
        }
    }
}

/// Polls an external server until it accepts connections (CI starts the
/// binary in the background; the LSEI build takes a moment).
fn wait_for_server(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    if let Err(e) = connect_with_retry(addr, deadline) {
        panic!("server at {addr} never came up: {e}");
    }
}

/// The WAL-on vs WAL-off mutation commit microbench: two in-process demo
/// servers take [`WAL_BENCH_MUTATIONS`] identical `add_table` commits
/// each; returns the mean client-observed commit latency (µs) per mode.
/// Checkpointing is disabled so the journaled side measures exactly the
/// write-ahead cost: encode + append + fsync before publish.
fn mutation_commit_bench() -> (f64, f64) {
    let run = |wal: Option<std::path::PathBuf>, hist: &thetis::obs::Histogram| -> f64 {
        let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
        let graph = bench.kg.graph;
        let mut lake = bench.lake;
        ExactLabelLinker::new(&graph).link_lake(&mut lake);
        let server = thetis::serve::Server::new(
            graph,
            lake,
            None,
            thetis::serve::ServerConfig {
                threads: 1,
                wal,
                checkpoint_every: 0,
                checkpoint_interval: Duration::ZERO,
                ..Default::default()
            },
        );
        let running = thetis::serve::serve(server).expect("bind loopback server");
        let addr = running.addr().to_string();
        let mut total_ns = 0u64;
        for i in 0..WAL_BENCH_MUTATIONS {
            let mut req = Request::op("add_table");
            req.name = Some(format!("wal_bench_t{i}"));
            req.csv = Some(format!("col_a,col_b\nv{i},w{i}\n"));
            let sent = Instant::now();
            let resp = send_one(&addr, &req).expect("mutation response");
            assert!(resp.is_ok(), "bench mutation failed: {resp:?}");
            let ns = sent.elapsed().as_nanos() as u64;
            hist.observe_nanos(ns);
            total_ns += ns;
        }
        running.shutdown();
        total_ns as f64 / WAL_BENCH_MUTATIONS as f64 / 1_000.0
    };

    let off = run(None, &OBS_MUTATION_WAL_OFF);
    let journal =
        std::env::temp_dir().join(format!("thetis-serve-bench-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(journal.with_extension("ckpt"));
    let on = run(Some(journal.clone()), &OBS_MUTATION_WAL_ON);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(journal.with_extension("ckpt"));
    (off, on)
}

/// Fetches the server's stats counters, best-effort.
fn query_stats(addr: &str) -> Option<thetis::serve::ServerStats> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"op\":\"stats\"}\n").ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    serde_json::from_str::<Response>(&reply).ok()?.stats
}

/// Fetches the server's rolling-window metrics snapshot, best-effort.
fn query_metrics(addr: &str) -> Option<thetis::serve::MetricsSnapshot> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"op\":\"metrics\"}\n").ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    serde_json::from_str::<Response>(&reply).ok()?.metrics
}

/// One request over a fresh connection, best-effort.
fn send_one(addr: &str, req: &Request) -> Option<Response> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut line = serde_json::to_string(req).ok()?;
    line.push('\n');
    writer.write_all(line.as_bytes()).ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    serde_json::from_str(&reply).ok()
}
