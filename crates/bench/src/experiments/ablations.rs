//! Design-choice ablations the paper calls out in prose:
//!
//! * row-score aggregation max vs avg (§7.2, "up to 5x better NDCG");
//! * BM25 as a prefilter instead of LSH (§7.3, 13–30% NDCG drop);
//! * noisy entity linking (§7.5, the EMBLOOKUP study).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{prefiltered_report, semantic_report, Sim};

#[derive(Serialize)]
struct AggRow {
    query_set: &'static str,
    sim: &'static str,
    agg: &'static str,
    mean_ndcg10: f64,
}

/// Row-aggregation ablation: Algorithm 1's line-13 aggregation as max vs
/// average.
pub fn agg_ablation(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut rows = Vec::new();
    for (query_set, queries, gt) in [
        ("1-tuple", &data.bench.queries1, &data.bench.gt1),
        ("5-tuple", &data.bench.queries5, &data.bench.gt5),
    ] {
        for sim in [Sim::Types, Sim::Embeddings] {
            for (agg, name) in [(RowAgg::Max, "max"), (RowAgg::Avg, "avg")] {
                let r = semantic_report(&data, sim, queries, gt, 10, agg);
                rows.push(AggRow {
                    query_set,
                    sim: match sim {
                        Sim::Types => "types",
                        Sim::Embeddings => "embeddings",
                    },
                    agg: name,
                    mean_ndcg10: r.mean_ndcg10,
                });
            }
        }
    }
    ctx.write_json("agg_ablation", &rows);
    let table = format_table(
        "Row-aggregation ablation (§7.2): NDCG@10 with max vs avg",
        &["queries", "σ", "agg", "NDCG@10"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    r.agg.to_string(),
                    format!("{:.3}", r.mean_ndcg10),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[derive(Serialize)]
struct PrefilterRow {
    query_set: &'static str,
    sim: &'static str,
    prefilter: &'static str,
    mean_ndcg10: f64,
}

/// BM25-as-prefilter ablation: restrict Algorithm 1 to BM25's top tables
/// instead of the LSEI candidates.
pub fn bm25_prefilter_ablation(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let graph = &data.bench.kg.graph;
    let bm25 = Bm25Index::build(&data.bench.lake, Bm25Params::default());
    // Match the candidate budget of the LSH prefilter: ~10% of the lake.
    let budget = (data.bench.lake.len() / 10).max(10);
    let mut rows = Vec::new();
    for (query_set, queries, gt) in [
        ("1-tuple", &data.bench.queries1, &data.bench.gt1),
        ("5-tuple", &data.bench.queries5, &data.bench.gt5),
    ] {
        for sim in [Sim::Types, Sim::Embeddings] {
            let sim_name = match sim {
                Sim::Types => "types",
                Sim::Embeddings => "embeddings",
            };
            // LSH prefilter reference.
            let (lsh, _) =
                prefiltered_report(&data, sim, LshConfig::recommended(), 1, queries, gt, 10);
            rows.push(PrefilterRow {
                query_set,
                sim: sim_name,
                prefilter: "LSH (30,10)",
                mean_ndcg10: lsh.mean_ndcg10,
            });
            // BM25 prefilter: score only BM25's top tables.
            let report = match sim {
                Sim::Types => {
                    let engine =
                        ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
                    MethodReport::run("bm25pre", queries, gt, |q| {
                        let candidates: Vec<TableId> = bm25
                            .search(
                                &Bm25Index::text_query(&q.cell_texts(&data.bench.kg)),
                                budget,
                            )
                            .into_iter()
                            .map(|(t, _)| t)
                            .collect();
                        engine
                            .search_among(
                                &Query::new(q.tuples.clone()),
                                SearchOptions::top(10),
                                &candidates,
                            )
                            .table_ids()
                    })
                }
                Sim::Embeddings => {
                    let engine = ThetisEngine::new(
                        graph,
                        &data.bench.lake,
                        EmbeddingCosine::new(&data.store),
                    );
                    MethodReport::run("bm25pre", queries, gt, |q| {
                        let candidates: Vec<TableId> = bm25
                            .search(
                                &Bm25Index::text_query(&q.cell_texts(&data.bench.kg)),
                                budget,
                            )
                            .into_iter()
                            .map(|(t, _)| t)
                            .collect();
                        engine
                            .search_among(
                                &Query::new(q.tuples.clone()),
                                SearchOptions::top(10),
                                &candidates,
                            )
                            .table_ids()
                    })
                }
            };
            rows.push(PrefilterRow {
                query_set,
                sim: sim_name,
                prefilter: "BM25",
                mean_ndcg10: report.mean_ndcg10,
            });
        }
    }
    ctx.write_json("bm25_prefilter", &rows);
    let table = format_table(
        "BM25-as-prefilter ablation (§7.3): NDCG@10 by prefilter",
        &["queries", "σ", "prefilter", "NDCG@10"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    r.prefilter.to_string(),
                    format!("{:.3}", r.mean_ndcg10),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[derive(Serialize)]
struct NoisyRow {
    query_set: &'static str,
    sim: &'static str,
    linking: &'static str,
    coverage: f64,
    mean_ndcg10: f64,
}

/// Noisy-linker study (§7.5): degrade the ground-truth links the way a
/// low-F1 automatic linker (EMBLOOKUP) would — drop some links, rewire
/// others to random entities — and re-measure quality.
pub fn noisy_linking(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let graph = &data.bench.kg.graph;
    let n_entities = graph.entity_count();

    // Build the degraded lake: 30% of links dropped, 15% rewired.
    let mut noisy_lake = data.bench.lake.clone();
    let mut rng = SmallRng::seed_from_u64(0x0F1);
    for table in noisy_lake.tables_mut() {
        for row in table.rows_mut() {
            for cell in row.iter_mut() {
                if cell.is_linked() {
                    let roll: f64 = rng.random();
                    if roll < 0.30 {
                        let owned = std::mem::replace(cell, CellValue::Null);
                        *cell = owned.unlink();
                    } else if roll < 0.45 {
                        if let CellValue::LinkedEntity { entity, .. } = cell {
                            *entity = EntityId(rng.random_range(0..n_entities as u32));
                        }
                    }
                }
            }
        }
    }
    noisy_lake.rebuild_postings();
    let noisy_coverage = LakeStats::compute(&noisy_lake).mean_coverage;
    let clean_coverage = LakeStats::compute(&data.bench.lake).mean_coverage;

    let mut rows = Vec::new();
    for (query_set, queries, gt) in [
        ("1-tuple", &data.bench.queries1, &data.bench.gt1),
        ("5-tuple", &data.bench.queries5, &data.bench.gt5),
    ] {
        for sim in [Sim::Types, Sim::Embeddings] {
            let sim_name = match sim {
                Sim::Types => "types",
                Sim::Embeddings => "embeddings",
            };
            let clean = semantic_report(&data, sim, queries, gt, 10, RowAgg::Max);
            rows.push(NoisyRow {
                query_set,
                sim: sim_name,
                linking: "ground truth",
                coverage: clean_coverage,
                mean_ndcg10: clean.mean_ndcg10,
            });
            let noisy = match sim {
                Sim::Types => {
                    let engine = ThetisEngine::new(graph, &noisy_lake, TypeJaccard::new(graph));
                    MethodReport::run("noisy", queries, gt, |q| {
                        engine
                            .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                            .table_ids()
                    })
                }
                Sim::Embeddings => {
                    let engine =
                        ThetisEngine::new(graph, &noisy_lake, EmbeddingCosine::new(&data.store));
                    MethodReport::run("noisy", queries, gt, |q| {
                        engine
                            .search(&Query::new(q.tuples.clone()), SearchOptions::top(10))
                            .table_ids()
                    })
                }
            };
            rows.push(NoisyRow {
                query_set,
                sim: sim_name,
                linking: "noisy linker",
                coverage: noisy_coverage,
                mean_ndcg10: noisy.mean_ndcg10,
            });
        }
    }
    ctx.write_json("noisy_linking", &rows);
    let table = format_table(
        "Noisy-linker study (§7.5): ground-truth vs degraded links (30% dropped, 15% rewired)",
        &["queries", "σ", "linking", "coverage", "NDCG@10"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    r.linking.to_string(),
                    format!("{:.1}%", r.coverage * 100.0),
                    format!("{:.3}", r.mean_ndcg10),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
