//! `delta-maintenance` microbench: incremental mutation vs full rebuild.
//!
//! The delta paths (`DataLake::{add_table, remove_table}` plus
//! `Lsei::{insert_table, remove_table}`) exist to make single-table lake
//! mutation O(table) instead of O(corpus). This experiment measures both
//! sides on the CI smoke lake and reports the ratio:
//!
//! * **delta**: one full remove+re-add cycle of a representative table,
//!   patching postings, digests, and band buckets in place;
//! * **rebuild**: postings + digests from scratch plus `Lsei::build` over
//!   the whole corpus — what every mutation used to cost.
//!
//! The acceptance bar is delta ≥ 10× cheaper than rebuild; the run fails
//! loudly if the smoke lake ever regresses below that.

use serde::Serialize;
use std::time::Instant;
use thetis::lsh::lsei::LseiMode;
use thetis::prelude::*;

use crate::context::Ctx;

/// Same cap as the smoke workload: CI wants seconds, not fidelity.
const MAX_SCALE: f64 = 0.002;

/// Remove+re-add cycles timed on the delta side.
const DELTA_ITERS: usize = 24;

/// Full rebuilds timed on the baseline side.
const REBUILD_ITERS: usize = 6;

/// The acceptance ratio: a delta must be at least this much cheaper than a
/// rebuild on the smoke lake.
const MIN_SPEEDUP: f64 = 10.0;

#[derive(Serialize)]
struct DeltaSummary {
    tables: usize,
    entities: usize,
    delta_iters: usize,
    rebuild_iters: usize,
    /// Mean seconds for one single-table mutation (lake + LSEI patch).
    mean_delta_seconds: f64,
    /// Mean seconds for one full rebuild (postings + digests + LSEI).
    mean_rebuild_seconds: f64,
    /// `mean_rebuild_seconds / mean_delta_seconds`.
    speedup: f64,
}

/// Runs the delta-vs-rebuild comparison.
pub fn run(ctx: &Ctx) -> String {
    let scale = ctx.scale.min(MAX_SCALE);
    eprintln!("[delta-maintenance] scale {scale}");
    let data = crate::context::BenchData::build(BenchmarkKind::Wt2015, scale, 4);
    let graph = &data.bench.kg.graph;
    let mut lake = data.bench.lake.clone();

    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&lake, graph, 0.5);
    let signer = || TypeSigner::new(graph, filter.clone(), cfg, 9);
    let mut lsei = Lsei::build(&lake, signer(), cfg, LseiMode::Entity);

    // A representative victim: the table with the median row count.
    let mut by_rows: Vec<(TableId, usize)> = lake.iter().map(|(id, t)| (id, t.n_rows())).collect();
    by_rows.sort_by_key(|&(_, n)| n);
    let mut victim = by_rows[by_rows.len() / 2].0;

    // Delta side: a full remove + re-add cycle is *two* mutations, so one
    // mutation costs half a cycle. The re-added table gets a fresh id at
    // the end of the lake (removed slots stay as tombstones), which is
    // exactly how deltas behave in production.
    let start = Instant::now();
    for _ in 0..DELTA_ITERS {
        let old = lake.remove_table(victim);
        lsei.remove_table(victim, &old);
        let id = lake.add_table(old);
        lsei.insert_table(id, lake.table(id));
        victim = id;
    }
    let mean_delta_seconds = start.elapsed().as_secs_f64() / (DELTA_ITERS * 2) as f64;

    // Rebuild side: what the same mutation costs without the delta paths —
    // postings and digests from scratch, then a full LSEI build.
    let start = Instant::now();
    for _ in 0..REBUILD_ITERS {
        let mut fresh = DataLake::from_tables(lake.tables().to_vec());
        fresh.rebuild_postings();
        let rebuilt = Lsei::build(&fresh, signer(), cfg, LseiMode::Entity);
        assert_eq!(
            rebuilt.parts().4,
            lsei.parts().4,
            "rebuild must cover the same tables"
        );
    }
    let mean_rebuild_seconds = start.elapsed().as_secs_f64() / REBUILD_ITERS as f64;

    let speedup = mean_rebuild_seconds / mean_delta_seconds;
    let summary = DeltaSummary {
        tables: lake.len(),
        entities: graph.entity_count(),
        delta_iters: DELTA_ITERS * 2,
        rebuild_iters: REBUILD_ITERS,
        mean_delta_seconds,
        mean_rebuild_seconds,
        speedup,
    };
    let line = format!(
        "delta-maintenance: {} tables — delta {:.1}µs/mutation, rebuild {:.1}ms, speedup {:.0}x",
        summary.tables,
        mean_delta_seconds * 1e6,
        mean_rebuild_seconds * 1e3,
        speedup,
    );
    ctx.write_json(&format!("delta_summary{}", ctx.thread_suffix()), &summary);
    println!("{line}");
    assert!(
        speedup >= MIN_SPEEDUP,
        "delta maintenance regressed: only {speedup:.1}x cheaper than a full \
         rebuild (acceptance bar is {MIN_SPEEDUP}x)"
    );
    line
}
