//! Table 2: benchmark statistics (# tables, mean rows/cols, coverage).

use serde::Serialize;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;

#[derive(Serialize)]
struct Row {
    corpus: String,
    tables: usize,
    mean_rows: f64,
    mean_cols: f64,
    mean_coverage: f64,
    paper_tables: usize,
}

/// Regenerates Table 2 for all four corpora at the context's scale.
pub fn run(ctx: &Ctx) -> String {
    let kinds = [
        BenchmarkKind::Wt2015,
        BenchmarkKind::Wt2019,
        BenchmarkKind::GitTables,
        BenchmarkKind::Synthetic,
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let data = ctx.data(kind);
        let stats = LakeStats::compute(&data.bench.lake);
        rows.push(Row {
            corpus: data.bench.name.clone(),
            tables: stats.tables,
            mean_rows: stats.mean_rows,
            mean_cols: stats.mean_cols,
            mean_coverage: stats.mean_coverage,
            paper_tables: kind.paper_tables(),
        });
    }
    ctx.write_json("table2", &rows);
    let table = format_table(
        &format!(
            "Table 2: benchmark statistics (scale {} of the paper's corpora)",
            ctx.scale
        ),
        &["corpus", "T", "R", "C", "Cov", "T (paper)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.corpus.clone(),
                    r.tables.to_string(),
                    format!("{:.1}", r.mean_rows),
                    format!("{:.1}", r.mean_cols),
                    format!("{:.1}%", r.mean_coverage * 100.0),
                    r.paper_tables.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_covers_all_four_corpora() {
        let dir = std::env::temp_dir().join("thetis-table2-test");
        let ctx = Ctx::new(0.0003, 2, dir.clone());
        let table = run(&ctx);
        for corpus in ["WT2015", "WT2019", "GitTables", "Synthetic"] {
            assert!(table.contains(corpus), "missing {corpus}");
        }
        let json = std::fs::read_to_string(dir.join("table2.json")).unwrap();
        let rows: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.as_array().unwrap().len(), 4);
    }
}
