//! §7.4: the WT2019 (lower coverage) and GitTables (larger tables,
//! keyword-linked) experiments.

use serde::Serialize;
use thetis::eval::report::{fmt_pct, fmt_secs, format_table};
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{prefiltered_report, Sim};

#[derive(Serialize)]
struct Row {
    corpus: String,
    query_set: &'static str,
    sim: &'static str,
    mean_ndcg10: f64,
    mean_seconds: f64,
    mean_reduction: f64,
}

fn measure(ctx: &Ctx, kind: BenchmarkKind, rows: &mut Vec<Row>) {
    let data = ctx.data(kind);
    for sim in [Sim::Types, Sim::Embeddings] {
        for (query_set, queries, gt) in [
            ("1-tuple", &data.bench.queries1, &data.bench.gt1),
            ("5-tuple", &data.bench.queries5, &data.bench.gt5),
        ] {
            let (r, stats) =
                prefiltered_report(&data, sim, LshConfig::recommended(), 1, queries, gt, 10);
            rows.push(Row {
                corpus: data.bench.name.clone(),
                query_set,
                sim: match sim {
                    Sim::Types => "types",
                    Sim::Embeddings => "embeddings",
                },
                mean_ndcg10: r.mean_ndcg10,
                mean_seconds: r.mean_seconds,
                mean_reduction: stats.mean_reduction,
            });
        }
    }
}

/// Demonstrates the GitTables linking pipeline: the corpus ships without
/// entity links, so mentions are matched by keyword (Lucene in the paper,
/// [`TokenLinker`] here). Returns the achieved coverage.
fn keyword_linking_demo(ctx: &Ctx) -> f64 {
    let data = ctx.data(BenchmarkKind::GitTables);
    let graph = &data.bench.kg.graph;
    // Strip the links from a sample of tables and re-link via tokens.
    let sample: Vec<Table> = data.bench.lake.tables().iter().take(50).cloned().collect();
    let mut stripped: Vec<Table> = sample
        .iter()
        .map(|t| {
            let mut t = t.clone();
            for row in t.rows_mut() {
                for cell in row.iter_mut() {
                    let owned = std::mem::replace(cell, CellValue::Null);
                    *cell = owned.unlink();
                }
            }
            t
        })
        .collect();
    let mut linker = TokenLinker::new(graph);
    let mut cells = 0;
    let mut linked = 0;
    for t in &mut stripped {
        let s = linker.link_table(t);
        cells += s.cells;
        linked += s.linked;
    }
    if cells == 0 {
        0.0
    } else {
        linked as f64 / cells as f64
    }
}

/// Regenerates the WT2019 and GitTables measurements of §7.4.
pub fn run(ctx: &Ctx) -> String {
    let mut rows = Vec::new();
    measure(ctx, BenchmarkKind::Wt2019, &mut rows);
    measure(ctx, BenchmarkKind::GitTables, &mut rows);
    ctx.write_json("other_corpora", &rows);
    let coverage = keyword_linking_demo(ctx);
    let mut table = format_table(
        "§7.4 WT2019 / GitTables: NDCG@10 and runtime, LSH (30,10), 1 vote",
        &["corpus", "queries", "σ", "NDCG@10", "runtime", "reduction"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.corpus.clone(),
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    format!("{:.3}", r.mean_ndcg10),
                    fmt_secs(r.mean_seconds),
                    fmt_pct(r.mean_reduction),
                ]
            })
            .collect::<Vec<_>>(),
    );
    table.push_str(&format!(
        "\nGitTables keyword-linking demo (token linker over stripped tables): {:.1}% coverage\n",
        coverage * 100.0
    ));
    println!("{table}");
    table
}
