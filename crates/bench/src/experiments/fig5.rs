//! Figure 5: recall@100 and recall@200 on WT2015, including the
//! BM25-complemented combinations STSTC and STSEC (§7.2).

use serde::Serialize;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{bm25_report, semantic_report, Sim};

#[derive(Serialize)]
struct Row {
    query_set: &'static str,
    method: String,
    mean_recall100: f64,
    median_recall100: f64,
    mean_recall200: f64,
    median_recall200: f64,
    mean_diff_vs_bm25_top100: f64,
}

fn eval_query_set(
    ctx: &Ctx,
    rows: &mut Vec<Row>,
    query_set: &'static str,
    queries: &[BenchQuery],
    gt: &GroundTruth,
) {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let bm25 = bm25_report(&data, queries, gt, 200);
    let stst = semantic_report(&data, Sim::Types, queries, gt, 200, RowAgg::Max);
    let stse = semantic_report(&data, Sim::Embeddings, queries, gt, 200, RowAgg::Max);

    // The combinations: merge the top 50% of each method's list.
    let combine = |semantic: &MethodReport, name: &str| {
        semantic.transformed(name, gt, |qi, sem| {
            merge_top_half(sem, &bm25.per_query[qi].retrieved, 200)
        })
    };
    let ststc = combine(&stst, "STSTC");
    let stsec = combine(&stse, "STSEC");
    // Unified combination (the paper's future work §8): types + embeddings
    // + BM25, one third of the budget each.
    let unified = stst.transformed("STSTEC", gt, |qi, sem_t| {
        let third = 200 / 3;
        let mut merged: Vec<TableId> = Vec::with_capacity(200);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            for list in [
                sem_t,
                &stse.per_query[qi].retrieved[..],
                &bm25.per_query[qi].retrieved[..],
            ] {
                if i < third.max(1) {
                    if let Some(&t) = list.get(i) {
                        if merged.len() < 200 && seen.insert(t) {
                            merged.push(t);
                        }
                    }
                }
            }
        }
        // Back-fill from the semantic list.
        for &t in sem_t {
            if merged.len() >= 200 {
                break;
            }
            if seen.insert(t) {
                merged.push(t);
            }
        }
        merged
    });

    let diff = |r: &MethodReport| {
        thetis::eval::metrics::mean(
            &r.per_query
                .iter()
                .zip(&bm25.per_query)
                .map(|(a, b)| {
                    thetis::eval::metrics::result_set_difference(&a.retrieved, &b.retrieved, 100)
                        as f64
                })
                .collect::<Vec<_>>(),
        )
    };
    for r in [&bm25, &stst, &stse, &ststc, &stsec, &unified] {
        rows.push(Row {
            query_set,
            method: r.name.clone(),
            mean_recall100: r.mean_recall100,
            median_recall100: r.median_recall100,
            mean_recall200: r.mean_recall200,
            median_recall200: r.median_recall200,
            mean_diff_vs_bm25_top100: diff(r),
        });
    }
}

/// Regenerates Figure 5.
pub fn run(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut rows = Vec::new();
    eval_query_set(
        ctx,
        &mut rows,
        "1-tuple",
        &data.bench.queries1,
        &data.bench.gt1,
    );
    eval_query_set(
        ctx,
        &mut rows,
        "5-tuple",
        &data.bench.queries5,
        &data.bench.gt5,
    );
    ctx.write_json("fig5", &rows);
    let table = format_table(
        "Figure 5: recall@100/200 on WT2015 (STSTC/STSEC = complemented with BM25)",
        &[
            "queries",
            "method",
            "R@100",
            "med@100",
            "R@200",
            "med@200",
            "|Δ BM25|",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.method.clone(),
                    format!("{:.3}", r.mean_recall100),
                    format!("{:.3}", r.median_recall100),
                    format!("{:.3}", r.mean_recall200),
                    format!("{:.3}", r.median_recall200),
                    format!("{:.0}", r.mean_diff_vs_bm25_top100),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
