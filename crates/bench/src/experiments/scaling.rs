//! §7.4 synthetic scalability: runtime on three nested row-resampled
//! corpora (the paper's 0.7M / 1.2M / 1.7M tables, scaled).

use serde::Serialize;
use thetis::eval::report::{fmt_pct, fmt_secs, format_table};
use thetis::prelude::*;

use crate::context::{BenchData, Ctx};
use crate::methods::{prefiltered_report, Sim};

#[derive(Serialize)]
struct Row {
    tables: usize,
    query_set: &'static str,
    sim: &'static str,
    mean_seconds: f64,
    mean_reduction: f64,
}

/// Regenerates the synthetic scaling experiment: three corpus sizes with
/// the recommended (30, 10) LSH configuration.
pub fn run(ctx: &Ctx) -> String {
    // The paper's three corpora relative to the full synthetic corpus.
    let fractions = [0.7 / 1.73, 1.2 / 1.73, 1.0];
    let mut rows = Vec::new();
    for f in fractions {
        let data = BenchData::build(
            BenchmarkKind::Synthetic,
            ctx.scale * f,
            ctx.n_queries.min(20),
        );
        let n = data.bench.lake.len();
        eprintln!("[scaling] corpus of {n} tables");
        for sim in [Sim::Types, Sim::Embeddings] {
            for (query_set, queries, gt) in [
                ("1-tuple", &data.bench.queries1, &data.bench.gt1),
                ("5-tuple", &data.bench.queries5, &data.bench.gt5),
            ] {
                let (r, stats) =
                    prefiltered_report(&data, sim, LshConfig::recommended(), 1, queries, gt, 10);
                rows.push(Row {
                    tables: n,
                    query_set,
                    sim: match sim {
                        Sim::Types => "types",
                        Sim::Embeddings => "embeddings",
                    },
                    mean_seconds: r.mean_seconds,
                    mean_reduction: stats.mean_reduction,
                });
            }
        }
    }
    ctx.write_json("scaling", &rows);
    let table = format_table(
        "§7.4 synthetic scaling: mean per-query runtime, LSH (30,10), 1 vote",
        &["tables", "queries", "σ", "runtime", "reduction"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tables.to_string(),
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    fmt_secs(r.mean_seconds),
                    fmt_pct(r.mean_reduction),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
