//! CI perf-smoke workload: the `scoring_cost` and `lsh_index` bench
//! workloads at a fixed quick scale, with every hot path instrumented.
//!
//! This is what the `bench-smoke` CI job runs. It exercises, end to end:
//! LSEI construction and prefilter queries (`lsh.build`, `lsh.query`),
//! engine searches with σ memoization (`core.search`, `core.sigma`,
//! `core.hungarian`, `core.row_agg`), and raw `score_table` calls for both
//! σ instantiations. The enclosing `reproduce` run snapshots the registry
//! into `BENCH_smoke.json`, which `bench_gate` diffs against the committed
//! baseline.

use serde::Serialize;
use thetis::core::search::{score_table, ScoreTimings};
use thetis::lsh::lsei::LseiMode;
use thetis::prelude::*;

use crate::context::Ctx;

/// The smoke workload never grows past this corpus fraction, whatever
/// `--scale` says: the CI gate wants seconds, not fidelity.
const MAX_SMOKE_SCALE: f64 = 0.002;

/// How many engine searches per query set.
const SMOKE_SEARCHES: usize = 4;

/// How many raw `score_table` iterations per σ.
const SMOKE_SCORE_ITERS: usize = 50;

#[derive(Serialize)]
struct SmokeSummary {
    tables: usize,
    threads: usize,
    lsei_build_seconds: f64,
    prefilter_queries: usize,
    searches: usize,
    score_table_iters: usize,
    mean_search_seconds: f64,
}

/// Runs the quick perf-smoke workload.
pub fn run(ctx: &Ctx) -> String {
    let scale = ctx.scale.min(MAX_SMOKE_SCALE);
    let n_queries = ctx.n_queries.clamp(4, 8);
    eprintln!(
        "[smoke] scale {scale}, {n_queries} queries, threads {}",
        if ctx.threads == 0 {
            "auto".to_string()
        } else {
            ctx.threads.to_string()
        }
    );
    let data = crate::context::BenchData::build(BenchmarkKind::Wt2015, scale, n_queries);
    let graph = &data.bench.kg.graph;
    let lake = &data.bench.lake;

    // lsh_index workload: build the LSEI, then run voting prefilters.
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(lake, graph, 0.5);
    let build_start = std::time::Instant::now();
    let lsei = Lsei::build(
        lake,
        TypeSigner::new(graph, filter.clone(), cfg, 9),
        cfg,
        LseiMode::Entity,
    );
    let lsei_build_seconds = build_start.elapsed().as_secs_f64();
    let mut prefilter_queries = 0usize;
    for q in data.bench.queries5.iter() {
        for votes in [1usize, 3] {
            let _ = lsei.prefilter(&q.distinct_entities(), votes);
            prefilter_queries += 1;
        }
    }

    // scoring_cost workload, part 1: full engine searches (σ memoization,
    // pruning, Hungarian mapping, row aggregation all live).
    let engine = ThetisEngine::new(graph, lake, TypeJaccard::new(graph));
    let options = SearchOptions {
        threads: ctx.threads,
        ..SearchOptions::top(10)
    };
    let mut searches = 0usize;
    let mut search_seconds = 0.0f64;
    for q in data.bench.queries5.iter().take(SMOKE_SEARCHES) {
        let query = Query::new(q.tuples.clone());
        let start = std::time::Instant::now();
        let plain = engine.search(&query, options);
        search_seconds += start.elapsed().as_secs_f64();
        let via_lsei = engine.search_prefiltered(&query, options, &lsei, 1);
        searches += 2;
        assert!(
            !plain.ranked.is_empty() && via_lsei.ranked.len() <= plain.ranked.len().max(10),
            "smoke search produced no ranking"
        );
    }

    // scoring_cost workload, part 2: raw per-table scoring for both σ.
    let inform = Informativeness::from_lake(lake);
    let type_sim = TypeJaccard::new(graph);
    let emb_sim = EmbeddingCosine::new(&data.store);
    let target = lake
        .iter()
        .max_by_key(|(_, t)| t.n_rows())
        .map(|(id, _)| id)
        .expect("smoke lake is non-empty");
    let query = Query::new(data.bench.queries1[0].tuples.clone());
    let mut checksum = 0.0f64;
    for _ in 0..SMOKE_SCORE_ITERS {
        let mut t = ScoreTimings::default();
        checksum += score_table(
            &query,
            lake,
            target,
            &type_sim,
            &inform,
            RowAgg::Max,
            &mut t,
        )
        .unwrap_or_default();
        checksum += score_table(&query, lake, target, &emb_sim, &inform, RowAgg::Max, &mut t)
            .unwrap_or_default();
    }
    assert!(checksum.is_finite(), "smoke scoring diverged");

    let summary = SmokeSummary {
        tables: lake.len(),
        threads: ctx.threads,
        lsei_build_seconds,
        prefilter_queries,
        searches,
        score_table_iters: SMOKE_SCORE_ITERS * 2,
        mean_search_seconds: search_seconds / SMOKE_SEARCHES.max(1) as f64,
    };
    let line = format!(
        "smoke: {} tables, LSEI build {:.3}s, {} prefilters, {} searches (mean {:.4}s), {} score_table iters",
        summary.tables,
        summary.lsei_build_seconds,
        summary.prefilter_queries,
        summary.searches,
        summary.mean_search_seconds,
        summary.score_table_iters,
    );
    ctx.write_json(&format!("smoke_summary{}", ctx.thread_suffix()), &summary);
    println!("{line}");
    line
}
