//! CI perf-smoke workload: the `scoring_cost` and `lsh_index` bench
//! workloads at a fixed quick scale, with every hot path instrumented.
//!
//! This is what the `bench-smoke` CI job runs. It exercises, end to end:
//! LSEI construction and prefilter queries (`lsh.build`, `lsh.query`),
//! engine searches with σ memoization (`core.search`, `core.sigma`,
//! `core.hungarian`, `core.row_agg`), and raw `score_table` calls for both
//! σ instantiations. The enclosing `reproduce` run snapshots the registry
//! into `BENCH_smoke.json`, which `bench_gate` diffs against the committed
//! baseline.

use serde::Serialize;
use thetis::core::search::{score_table, ScoreTimings};
use thetis::lsh::lsei::LseiMode;
use thetis::prelude::*;

use crate::context::Ctx;

/// The smoke workload never grows past this corpus fraction, whatever
/// `--scale` says: the CI gate wants seconds, not fidelity.
const MAX_SMOKE_SCALE: f64 = 0.002;

/// How many engine searches per query set.
const SMOKE_SEARCHES: usize = 4;

/// Cold-cache passes of the embedding-σ search block; enough that the
/// quantizable embedding σ dominates the `core.sigma*` spans over the
/// kernel-invariant type-σ work above it (the f32-vs-f64 span diff is a
/// CI acceptance signal, so it needs headroom over run-to-run noise).
const SMOKE_EMB_PASSES: usize = 6;

/// Dimensionality of the σ-workload store. The corpus-fidelity store
/// trains at 32d for speed, but real RDF2Vec embeddings run 100–200d —
/// and at 32d fixed per-pair overhead (norm lookups, bounds checks,
/// clamping) hides most of the slab kernels' advantage, so the smoke
/// numbers would understate what production sees.
const SMOKE_EMB_DIM: usize = 128;

/// How many raw `score_table` iterations per σ.
const SMOKE_SCORE_ITERS: usize = 50;

#[derive(Serialize)]
struct SmokeSummary {
    tables: usize,
    threads: usize,
    kernel: String,
    lsei_build_seconds: f64,
    prefilter_queries: usize,
    searches: usize,
    emb_searches: usize,
    score_table_iters: usize,
    mean_search_seconds: f64,
    mean_emb_search_seconds: f64,
    sigma_slab_bytes: usize,
}

/// Runs the quick perf-smoke workload.
pub fn run(ctx: &Ctx) -> String {
    let scale = ctx.scale.min(MAX_SMOKE_SCALE);
    let n_queries = ctx.n_queries.clamp(4, 8);
    eprintln!(
        "[smoke] scale {scale}, {n_queries} queries, threads {}, kernel {}",
        if ctx.threads == 0 {
            "auto".to_string()
        } else {
            ctx.threads.to_string()
        },
        ctx.kernel,
    );
    let data = crate::context::BenchData::build(BenchmarkKind::Wt2015, scale, n_queries);
    let graph = &data.bench.kg.graph;
    let lake = &data.bench.lake;

    // lsh_index workload: build the LSEI, then run voting prefilters.
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(lake, graph, 0.5);
    let build_start = std::time::Instant::now();
    let lsei = Lsei::build(
        lake,
        TypeSigner::new(graph, filter.clone(), cfg, 9),
        cfg,
        LseiMode::Entity,
    );
    let lsei_build_seconds = build_start.elapsed().as_secs_f64();
    let mut prefilter_queries = 0usize;
    for q in data.bench.queries5.iter() {
        for votes in [1usize, 3] {
            let _ = lsei.prefilter(&q.distinct_entities(), votes);
            prefilter_queries += 1;
        }
    }

    // scoring_cost workload, part 1: full engine searches (σ memoization,
    // pruning, Hungarian mapping, row aggregation all live).
    let engine = ThetisEngine::new(graph, lake, TypeJaccard::new(graph));
    let options = SearchOptions {
        threads: ctx.threads,
        ..SearchOptions::top(10)
    };
    let mut searches = 0usize;
    let mut search_seconds = 0.0f64;
    for q in data.bench.queries5.iter().take(SMOKE_SEARCHES) {
        let query = Query::new(q.tuples.clone());
        let start = std::time::Instant::now();
        let plain = engine.search(&query, options);
        search_seconds += start.elapsed().as_secs_f64();
        let via_lsei = engine.search_prefiltered(&query, options, &lsei, 1);
        searches += 2;
        assert!(
            !plain.ranked.is_empty() && via_lsei.ranked.len() <= plain.ranked.len().max(10),
            "smoke search produced no ranking"
        );
    }

    // Embedding-σ searches under the context's kernel: `core.sigma*` self
    // time in the enclosing BENCH snapshot is dominated by these, so
    // diffing an `_f32` run against the f64 baseline reads off the
    // quantized-kernel speedup directly. Each pass uses a fresh engine
    // (cold σ cache) over both query sets — otherwise memoization would
    // hide all but the first pass's kernel work behind cache hits and the
    // kernel-invariant type searches above would dilute the spans. The
    // slab is warmed up front so its one-time build cost never pollutes a
    // sigma span.
    // The store is synthetic (seeded uniform values at paper-realistic
    // dimensionality): per-pair σ cost is data-independent, so this
    // measures exactly what the kernels change without paying for a
    // second SGNS training run.
    let emb_store = {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x516D_A50B);
        let raw: Vec<f32> = (0..graph.entity_count() * SMOKE_EMB_DIM)
            .map(|_| rng.random::<f32>() - 0.5)
            .collect();
        EmbeddingStore::from_raw(raw, SMOKE_EMB_DIM)
    };
    let emb_options = options.with_kernel(ctx.kernel);
    let mut sigma_slab_bytes = 0usize;
    let mut emb_searches = 0usize;
    let mut emb_search_seconds = 0.0f64;
    for _ in 0..SMOKE_EMB_PASSES {
        let emb_cos = EmbeddingCosine::new(&emb_store);
        emb_cos.warm(ctx.kernel);
        sigma_slab_bytes = emb_cos.slab_bytes();
        let emb_engine = ThetisEngine::new(graph, lake, emb_cos);
        for q in data.bench.queries5.iter().chain(data.bench.queries1.iter()) {
            let query = Query::new(q.tuples.clone());
            let start = std::time::Instant::now();
            let ranked = emb_engine.search(&query, emb_options);
            emb_search_seconds += start.elapsed().as_secs_f64();
            emb_searches += 1;
            assert!(
                !ranked.ranked.is_empty(),
                "smoke embedding search produced no ranking"
            );
        }
    }

    // scoring_cost workload, part 2: raw per-table scoring for both σ.
    let inform = Informativeness::from_lake(lake);
    let type_sim = TypeJaccard::new(graph);
    let emb_sim = EmbeddingCosine::new(&data.store);
    let target = lake
        .iter()
        .max_by_key(|(_, t)| t.n_rows())
        .map(|(id, _)| id)
        .expect("smoke lake is non-empty");
    let query = Query::new(data.bench.queries1[0].tuples.clone());
    let mut checksum = 0.0f64;
    for _ in 0..SMOKE_SCORE_ITERS {
        let mut t = ScoreTimings::default();
        checksum += score_table(
            &query,
            lake,
            target,
            &type_sim,
            &inform,
            RowAgg::Max,
            &mut t,
        )
        .unwrap_or_default();
        checksum += score_table(&query, lake, target, &emb_sim, &inform, RowAgg::Max, &mut t)
            .unwrap_or_default();
    }
    assert!(checksum.is_finite(), "smoke scoring diverged");

    let summary = SmokeSummary {
        tables: lake.len(),
        threads: ctx.threads,
        kernel: ctx.kernel.to_string(),
        lsei_build_seconds,
        prefilter_queries,
        searches,
        emb_searches,
        score_table_iters: SMOKE_SCORE_ITERS * 2,
        mean_search_seconds: search_seconds / SMOKE_SEARCHES.max(1) as f64,
        mean_emb_search_seconds: emb_search_seconds / emb_searches.max(1) as f64,
        sigma_slab_bytes,
    };
    let line = format!(
        "smoke: {} tables, LSEI build {:.3}s, {} prefilters, {} searches (mean {:.4}s), \
         {} embedding searches (kernel {}, mean {:.4}s, slab {} B), {} score_table iters",
        summary.tables,
        summary.lsei_build_seconds,
        summary.prefilter_queries,
        summary.searches,
        summary.mean_search_seconds,
        summary.emb_searches,
        summary.kernel,
        summary.mean_emb_search_seconds,
        summary.sigma_slab_bytes,
        summary.score_table_iters,
    );
    ctx.write_json(&format!("smoke_summary{}", ctx.artifact_suffix()), &summary);
    println!("{line}");
    line
}
