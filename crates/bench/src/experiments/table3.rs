//! Tables 3 and 4: runtime and search-space reduction per LSH
//! configuration, voting threshold, and query size, against the
//! brute-force baselines.

use serde::Serialize;
use thetis::eval::report::{fmt_pct, fmt_secs, format_table};
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{prefiltered_report, semantic_report_opts, Sim};

#[derive(Serialize)]
struct Row {
    query_set: &'static str,
    method: String,
    /// σ kernel the run scored with (`"-"` for kernel-invariant methods).
    kernel: &'static str,
    votes: usize,
    mean_seconds: f64,
    mean_reduction: f64,
    mean_ndcg10: f64,
    sigma_computed: u64,
    tables_pruned: usize,
}

fn eval_query_set(
    ctx: &Ctx,
    rows: &mut Vec<Row>,
    query_set: &'static str,
    queries: &[BenchQuery],
    gt: &GroundTruth,
) {
    let data = ctx.data(BenchmarkKind::Wt2015);
    // Brute force reference, before (exhaustive) and after (memoized +
    // pruned) the scoring optimizations — same ranking, fewer σ. STSE's
    // memoized variant additionally runs under every σ kernel, so the f32
    // and i8 rows show the quantized-slab speedup against the f64
    // reference at identical NDCG (within quantization tolerance).
    for sim in [Sim::Types, Sim::Embeddings] {
        let base = match sim {
            Sim::Types => "STST",
            Sim::Embeddings => "STSE",
        };
        let kernels: &[SigmaKernel] = match sim {
            Sim::Types => &[SigmaKernel::F64Exact],
            Sim::Embeddings => &SigmaKernel::ALL,
        };
        let (r, scoring) = semantic_report_opts(
            &data,
            sim,
            &format!("{base} exh"),
            queries,
            gt,
            SearchOptions::exhaustive(10),
        );
        rows.push(Row {
            query_set,
            method: r.name.clone(),
            kernel: kernel_label(sim, SigmaKernel::F64Exact),
            votes: 0,
            mean_seconds: r.mean_seconds,
            mean_reduction: 0.0,
            mean_ndcg10: r.mean_ndcg10,
            sigma_computed: scoring.sigma_computed,
            tables_pruned: scoring.tables_pruned,
        });
        for &kernel in kernels {
            let (r, scoring) = semantic_report_opts(
                &data,
                sim,
                base,
                queries,
                gt,
                SearchOptions::top(10).with_kernel(kernel),
            );
            rows.push(Row {
                query_set,
                method: r.name.clone(),
                kernel: kernel_label(sim, kernel),
                votes: 0,
                mean_seconds: r.mean_seconds,
                mean_reduction: 0.0,
                mean_ndcg10: r.mean_ndcg10,
                sigma_computed: scoring.sigma_computed,
                tables_pruned: scoring.tables_pruned,
            });
        }
    }
    // LSH configurations × votes.
    for votes in [1usize, 3] {
        for sim in [Sim::Types, Sim::Embeddings] {
            for cfg in LshConfig::paper_configs() {
                let (r, stats) = prefiltered_report(&data, sim, cfg, votes, queries, gt, 10);
                rows.push(Row {
                    query_set,
                    method: format!("{}{}", sim.letter(), cfg),
                    kernel: "-",
                    votes,
                    mean_seconds: r.mean_seconds,
                    mean_reduction: stats.mean_reduction,
                    mean_ndcg10: r.mean_ndcg10,
                    sigma_computed: 0,
                    tables_pruned: 0,
                });
            }
        }
    }
}

/// The kernel column label: type Jaccard is kernel-invariant.
fn kernel_label(sim: Sim, kernel: SigmaKernel) -> &'static str {
    match sim {
        Sim::Types => "-",
        Sim::Embeddings => kernel.name(),
    }
}

/// Regenerates Tables 3 (runtime) and 4 (search-space reduction) together
/// — they come from the same runs.
pub fn run(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut rows = Vec::new();
    eval_query_set(
        ctx,
        &mut rows,
        "1-tuple",
        &data.bench.queries1,
        &data.bench.gt1,
    );
    eval_query_set(
        ctx,
        &mut rows,
        "5-tuple",
        &data.bench.queries5,
        &data.bench.gt5,
    );
    ctx.write_json("table3_table4", &rows);
    let table = format_table(
        "Tables 3+4: mean per-query runtime / search-space reduction / NDCG@10 (WT2015)",
        &[
            "queries",
            "method",
            "kernel",
            "votes",
            "runtime",
            "reduction",
            "NDCG@10",
            "σ evals",
            "pruned",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.method.clone(),
                    r.kernel.to_string(),
                    if r.votes == 0 {
                        "-".into()
                    } else {
                        r.votes.to_string()
                    },
                    fmt_secs(r.mean_seconds),
                    if r.votes == 0 {
                        "-".into()
                    } else {
                        fmt_pct(r.mean_reduction)
                    },
                    format!("{:.3}", r.mean_ndcg10),
                    if r.sigma_computed == 0 {
                        "-".into()
                    } else {
                        r.sigma_computed.to_string()
                    },
                    if r.votes == 0 && r.method.contains("exh") {
                        "-".into()
                    } else if r.votes == 0 {
                        r.tables_pruned.to_string()
                    } else {
                        "-".into()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
