//! Figure 6: NDCG@10 when only tables up to a given entity-link coverage
//! may be returned.
//!
//! Exactly the paper's protocol: retrieve the top-1000 tables, drop every
//! table whose link coverage exceeds the cap, and evaluate NDCG on the
//! top-10 of what remains.

use serde::Serialize;
use thetis::eval::report::format_table;
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::{semantic_report, Sim};

#[derive(Serialize)]
struct Row {
    query_set: &'static str,
    sim: &'static str,
    coverage_cap: f64,
    mean_ndcg10: f64,
}

fn eval(
    ctx: &Ctx,
    rows: &mut Vec<Row>,
    query_set: &'static str,
    queries: &[BenchQuery],
    gt: &GroundTruth,
) {
    let data = ctx.data(BenchmarkKind::Wt2015);
    // Precompute per-table coverage once.
    let coverage: Vec<f64> = data
        .bench
        .lake
        .tables()
        .iter()
        .map(|t| t.link_coverage())
        .collect();
    for sim in [Sim::Types, Sim::Embeddings] {
        let base = semantic_report(&data, sim, queries, gt, 1000, RowAgg::Max);
        for cap in [1.0, 0.8, 0.6, 0.4, 0.2] {
            let filtered = base.transformed("capped", gt, |_, retrieved| {
                retrieved
                    .iter()
                    .copied()
                    .filter(|t| coverage[t.index()] <= cap + 1e-9)
                    .collect()
            });
            rows.push(Row {
                query_set,
                sim: match sim {
                    Sim::Types => "types",
                    Sim::Embeddings => "embeddings",
                },
                coverage_cap: cap,
                mean_ndcg10: filtered.mean_ndcg10,
            });
        }
    }
}

/// Regenerates Figure 6.
pub fn run(ctx: &Ctx) -> String {
    let data = ctx.data(BenchmarkKind::Wt2015);
    let mut rows = Vec::new();
    eval(
        ctx,
        &mut rows,
        "1-tuple",
        &data.bench.queries1,
        &data.bench.gt1,
    );
    eval(
        ctx,
        &mut rows,
        "5-tuple",
        &data.bench.queries5,
        &data.bench.gt5,
    );
    ctx.write_json("fig6", &rows);
    let table = format_table(
        "Figure 6: NDCG@10 when only tables with coverage ≤ cap may be returned",
        &["queries", "σ", "coverage cap", "NDCG@10"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    format!("{:.0}%", r.coverage_cap * 100.0),
                    format!("{:.3}", r.mean_ndcg10),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_reports_all_coverage_caps() {
        let dir = std::env::temp_dir().join("thetis-fig6-test");
        let ctx = Ctx::new(0.0003, 2, dir);
        let table = run(&ctx);
        for cap in ["100%", "80%", "60%", "40%", "20%"] {
            assert!(table.contains(cap), "missing cap {cap}");
        }
    }
}
