//! §7.3 "Table scoring": per-table scoring cost and the share spent in the
//! Hungarian mapping `μ_{T,Q}`, on WT2015 and GitTables, for both σ — and,
//! for the embedding σ, under each quantization kernel (f64 reference,
//! f32 and i8 SoA slabs), so the table reads off the kernel speedup
//! directly.

use serde::Serialize;
use thetis::eval::report::{fmt_pct, fmt_secs, format_table};
use thetis::prelude::*;

use crate::context::Ctx;
use crate::methods::Sim;

#[derive(Serialize)]
struct Row {
    corpus: String,
    query_set: &'static str,
    sim: &'static str,
    kernel: &'static str,
    mean_table_seconds: f64,
    mapping_fraction: f64,
}

/// The (σ, kernel) combinations measured: type Jaccard is kernel-invariant
/// (one row), embedding cosine gets one row per kernel.
fn combos() -> Vec<(Sim, SigmaKernel)> {
    let mut v = vec![(Sim::Types, SigmaKernel::F64Exact)];
    v.extend(SigmaKernel::ALL.iter().map(|&k| (Sim::Embeddings, k)));
    v
}

fn measure(ctx: &Ctx, kind: BenchmarkKind, rows: &mut Vec<Row>) {
    let data = ctx.data(kind);
    let graph = &data.bench.kg.graph;
    // Per-table timing stabilizes after a handful of queries; cap the
    // sample so the single-threaded measurement stays fast on GitTables.
    let cap = 8.min(data.bench.queries1.len());
    let q1 = &data.bench.queries1[..cap];
    let q5 = &data.bench.queries5[..cap];
    for (sim, kernel) in combos() {
        for (query_set, queries) in [("1-tuple", q1), ("5-tuple", q5)] {
            let mut mapping = 0u64;
            let mut scoring = 0u64;
            let mut tables = 0usize;
            // Single-threaded so the per-table time is undistorted, and
            // exhaustive (no memo, no pruning) so every table contributes a
            // full Hungarian mapping to the measured share.
            let options = SearchOptions {
                threads: 1,
                ..SearchOptions::exhaustive(10)
            }
            .with_kernel(kernel);
            let run = |res: thetis::core::SearchResult,
                       mapping: &mut u64,
                       scoring: &mut u64,
                       tables: &mut usize| {
                *mapping += res.stats.timings.mapping_nanos;
                *scoring += res.stats.timings.scoring_nanos;
                *tables += res.stats.timings.tables_scored;
            };
            match sim {
                Sim::Types => {
                    let engine =
                        ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
                    for q in queries.iter() {
                        run(
                            engine.search(&Query::new(q.tuples.clone()), options),
                            &mut mapping,
                            &mut scoring,
                            &mut tables,
                        );
                    }
                }
                Sim::Embeddings => {
                    let cos = EmbeddingCosine::new(&data.store);
                    cos.warm(kernel);
                    let engine = ThetisEngine::new(graph, &data.bench.lake, cos);
                    for q in queries.iter() {
                        run(
                            engine.search(&Query::new(q.tuples.clone()), options),
                            &mut mapping,
                            &mut scoring,
                            &mut tables,
                        );
                    }
                }
            }
            rows.push(Row {
                corpus: data.bench.name.clone(),
                query_set,
                sim: match sim {
                    Sim::Types => "types",
                    Sim::Embeddings => "embeddings",
                },
                kernel: match sim {
                    Sim::Types => "-",
                    Sim::Embeddings => kernel.name(),
                },
                mean_table_seconds: scoring as f64 / 1e9 / tables.max(1) as f64,
                mapping_fraction: if scoring == 0 {
                    0.0
                } else {
                    mapping as f64 / scoring as f64
                },
            });
        }
    }
}

/// Regenerates the scoring-cost measurement of §7.3, with per-kernel rows
/// for the embedding σ.
pub fn run(ctx: &Ctx) -> String {
    let mut rows = Vec::new();
    measure(ctx, BenchmarkKind::Wt2015, &mut rows);
    measure(ctx, BenchmarkKind::GitTables, &mut rows);
    ctx.write_json("scoring_cost", &rows);
    let table = format_table(
        "§7.3 table-scoring cost: mean per-table time and share spent in μ(T,Q)",
        &["corpus", "queries", "σ", "kernel", "per-table", "μ share"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.corpus.clone(),
                    r.query_set.to_string(),
                    r.sim.to_string(),
                    r.kernel.to_string(),
                    fmt_secs(r.mean_table_seconds),
                    fmt_pct(r.mapping_fraction),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    table
}
