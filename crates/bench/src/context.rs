//! Shared experiment context: corpora and embeddings are expensive to
//! build, so they are constructed once and cached per run.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use thetis::prelude::*;

/// A benchmark corpus plus everything derived from it that multiple
/// experiments share.
pub struct BenchData {
    /// The corpus, queries, and ground truth.
    pub bench: Benchmark,
    /// RDF2Vec embeddings trained on the corpus KG.
    pub store: EmbeddingStore,
}

impl BenchData {
    /// Builds a corpus and trains embeddings for it.
    pub fn build(kind: BenchmarkKind, scale: f64, n_queries: usize) -> Self {
        let config = BenchmarkConfig {
            kind,
            scale,
            n_queries,
            query_width: 3,
            seed: 0xBEEF,
        };
        let bench = Benchmark::build(&config);
        let store = Rdf2Vec::new(Rdf2VecConfig::default()).train(&bench.kg.graph);
        Self { bench, store }
    }
}

/// The run context: scale, query count, output directory, and a cache of
/// built corpora.
pub struct Ctx {
    /// Fraction of each paper corpus to generate (default 0.01).
    pub scale: f64,
    /// Queries per corpus (the paper uses 50).
    pub n_queries: usize,
    /// Scoring worker threads (0 = all available cores). Experiments that
    /// search through `SearchOptions` honor this; result artifacts carry a
    /// `_t<N>` suffix when it is explicit, so per-thread-count baselines
    /// can coexist.
    pub threads: usize,
    /// σ kernel for embedding-similarity searches (`--kernel`). The f64
    /// reference is the default; quantized kernels suffix result artifacts
    /// (`_f32`, `_i8`) so per-kernel baselines coexist next to the f64
    /// ones.
    pub kernel: SigmaKernel,
    /// Directory for JSON result dumps.
    pub out_dir: PathBuf,
    /// Address of an already-running `thetis-cli serve` instance. When
    /// set, the `serve` experiment drives that server instead of booting
    /// one in-process (this is how the CI serve-smoke job runs it).
    pub connect: Option<String>,
    cache: Mutex<Vec<(BenchmarkKind, Arc<BenchData>)>>,
}

impl Ctx {
    /// Creates a context.
    pub fn new(scale: f64, n_queries: usize, out_dir: PathBuf) -> Self {
        std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
        Self {
            scale,
            n_queries,
            threads: 0,
            kernel: SigmaKernel::default(),
            out_dir,
            connect: None,
            cache: Mutex::new(Vec::new()),
        }
    }

    /// Sets an explicit scoring thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the σ kernel embedding-similarity experiments run under.
    pub fn with_kernel(mut self, kernel: SigmaKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Points the `serve` experiment at an external server.
    pub fn with_connect(mut self, connect: Option<String>) -> Self {
        self.connect = connect;
        self
    }

    /// The artifact suffix for this context's thread count (`"_t4"` when
    /// explicit, empty otherwise).
    pub fn thread_suffix(&self) -> String {
        if self.threads > 0 {
            format!("_t{}", self.threads)
        } else {
            String::new()
        }
    }

    /// The artifact suffix for this context's σ kernel (`"_f32"` / `"_i8"`
    /// when quantized, empty for the f64 reference — existing baselines
    /// keep their names).
    pub fn kernel_suffix(&self) -> String {
        match self.kernel {
            SigmaKernel::F64Exact => String::new(),
            k => format!("_{}", k.name()),
        }
    }

    /// The combined artifact suffix: thread count then kernel
    /// (`"_t1_f32"`), so per-thread and per-kernel baselines coexist.
    pub fn artifact_suffix(&self) -> String {
        format!("{}{}", self.thread_suffix(), self.kernel_suffix())
    }

    /// Returns (building and caching on first use) the data for `kind`.
    pub fn data(&self, kind: BenchmarkKind) -> Arc<BenchData> {
        if let Some((_, d)) = self.cache.lock().unwrap().iter().find(|(k, _)| *k == kind) {
            return Arc::clone(d);
        }
        eprintln!(
            "[build] {kind:?} at scale {} ({} queries)...",
            self.scale, self.n_queries
        );
        let built = Arc::new(BenchData::build(kind, self.scale, self.n_queries));
        eprintln!(
            "[build] {kind:?}: {}",
            LakeStats::compute(&built.bench.lake)
        );
        self.cache.lock().unwrap().push((kind, Arc::clone(&built)));
        built
    }

    /// Writes a JSON result artifact.
    pub fn write_json(&self, name: &str, value: &impl serde::Serialize) {
        let path = self.out_dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(value).expect("serializable result");
        std::fs::write(&path, json).expect("cannot write result file");
        eprintln!("[out] wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_corpora() {
        let dir = std::env::temp_dir().join("thetis-bench-test");
        let ctx = Ctx::new(0.0003, 2, dir);
        let a = ctx.data(BenchmarkKind::Wt2015);
        let b = ctx.data(BenchmarkKind::Wt2015);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn write_json_produces_file() {
        let dir = std::env::temp_dir().join("thetis-bench-test-json");
        let ctx = Ctx::new(0.001, 2, dir.clone());
        ctx.write_json("probe", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(dir.join("probe.json")).unwrap();
        assert!(content.contains('1'));
    }
}
