//! Reusable method runners: each returns a [`MethodReport`] over a query
//! set, so every experiment composes the same building blocks the paper's
//! evaluation does.

use serde::Serialize;
use thetis::baselines::union_search::tuples_to_columns;
use thetis::prelude::*;

use crate::context::BenchData;

/// Which entity similarity σ to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sim {
    /// Adjusted type Jaccard (STST).
    Types,
    /// Embedding cosine (STSE).
    Embeddings,
}

impl Sim {
    /// The paper's method prefix ("T" / "E" in Tables 3–4).
    pub fn letter(self) -> &'static str {
        match self {
            Sim::Types => "T",
            Sim::Embeddings => "E",
        }
    }
}

/// Per-query prefilter observations for Tables 3–4.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PrefilterStats {
    /// Mean search-space reduction across queries.
    pub mean_reduction: f64,
}

/// Scoring-optimizer counters summed across a query set (the before/after
/// evidence for σ memoization and upper-bound pruning).
#[derive(Debug, Clone, Default, Serialize)]
pub struct ScoringStats {
    /// σ evaluations actually performed.
    pub sigma_computed: u64,
    /// σ lookups served from the query-scoped memo.
    pub sigma_cached: u64,
    /// Tables fully scored.
    pub tables_scored: usize,
    /// Tables skipped by upper-bound pruning.
    pub tables_pruned: usize,
}

impl ScoringStats {
    fn absorb(&mut self, stats: &SearchStats) {
        self.sigma_computed += stats.sigma_computed();
        self.sigma_cached += stats.sigma_cached();
        self.tables_scored += stats.tables_scored;
        self.tables_pruned += stats.tables_pruned();
    }
}

/// Runs brute-force semantic search with explicit [`SearchOptions`],
/// returning the report plus the summed optimizer counters.
pub fn semantic_report_opts(
    data: &BenchData,
    sim: Sim,
    name: &str,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    options: SearchOptions,
) -> (MethodReport, ScoringStats) {
    let graph = &data.bench.kg.graph;
    let mut scoring = ScoringStats::default();
    let report = match sim {
        Sim::Types => {
            let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
            MethodReport::run(name, queries, gt, |q| {
                let res = engine.search(&Query::new(q.tuples.clone()), options);
                scoring.absorb(&res.stats);
                res.table_ids()
            })
        }
        Sim::Embeddings => {
            let cos = EmbeddingCosine::new(&data.store);
            // Quantized kernels score from a SoA slab; build it before the
            // timed runs so the one-time cost never lands in a query.
            cos.warm(options.kernel);
            let engine = ThetisEngine::new(graph, &data.bench.lake, cos);
            MethodReport::run(name, queries, gt, |q| {
                let res = engine.search(&Query::new(q.tuples.clone()), options);
                scoring.absorb(&res.stats);
                res.table_ids()
            })
        }
    };
    (report, scoring)
}

/// Runs brute-force semantic search (STST or STSE) with the default
/// (memoized + pruned) scoring path.
pub fn semantic_report(
    data: &BenchData,
    sim: Sim,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
    agg: RowAgg,
) -> MethodReport {
    let options = SearchOptions {
        k,
        agg,
        ..SearchOptions::default()
    };
    let name = match sim {
        Sim::Types => "STST",
        Sim::Embeddings => "STSE",
    };
    semantic_report_opts(data, sim, name, queries, gt, options).0
}

/// Builds the LSEI for a similarity and configuration.
pub fn build_lsei<'a>(data: &'a BenchData, sim: Sim, cfg: LshConfig) -> LseiVariant<'a> {
    let graph = &data.bench.kg.graph;
    match sim {
        Sim::Types => {
            let filter = TypeFilter::from_lake(&data.bench.lake, graph, 0.5);
            LseiVariant::Types(Lsei::build(
                &data.bench.lake,
                TypeSigner::new(graph, filter, cfg, 0xA5),
                cfg,
                LseiMode::Entity,
            ))
        }
        Sim::Embeddings => LseiVariant::Embeddings(Lsei::build(
            &data.bench.lake,
            EmbeddingSigner::new(&data.store, cfg, 0xA5),
            cfg,
            LseiMode::Entity,
        )),
    }
}

/// An LSEI over either signer (the two are distinct types).
pub enum LseiVariant<'a> {
    /// Type-pair MinHash index.
    Types(Lsei<TypeSigner<'a>>),
    /// Hyperplane embedding index.
    Embeddings(Lsei<EmbeddingSigner<'a>>),
}

/// Runs LSH-prefiltered semantic search, returning the report and the mean
/// search-space reduction.
pub fn prefiltered_report(
    data: &BenchData,
    sim: Sim,
    cfg: LshConfig,
    votes: usize,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> (MethodReport, PrefilterStats) {
    let graph = &data.bench.kg.graph;
    let lsei = build_lsei(data, sim, cfg);
    let options = SearchOptions::top(k);
    let name = format!("{}{} v{}", sim.letter(), cfg, votes);
    let mut reductions = Vec::new();
    let report = match (&lsei, sim) {
        (LseiVariant::Types(lsei), _) => {
            let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
            MethodReport::run(&name, queries, gt, |q| {
                let res =
                    engine.search_prefiltered(&Query::new(q.tuples.clone()), options, lsei, votes);
                reductions.push(res.stats.reduction);
                res.table_ids()
            })
        }
        (LseiVariant::Embeddings(lsei), _) => {
            let engine =
                ThetisEngine::new(graph, &data.bench.lake, EmbeddingCosine::new(&data.store));
            MethodReport::run(&name, queries, gt, |q| {
                let res =
                    engine.search_prefiltered(&Query::new(q.tuples.clone()), options, lsei, votes);
                reductions.push(res.stats.reduction);
                res.table_ids()
            })
        }
    };
    let stats = PrefilterStats {
        mean_reduction: thetis::eval::metrics::mean(&reductions),
    };
    (report, stats)
}

/// Runs LSH-prefiltered search with query-side column aggregation (§6.2):
/// all query entities merge into a single LSEI lookup.
pub fn prefiltered_aggregated_report(
    data: &BenchData,
    sim: Sim,
    cfg: LshConfig,
    votes: usize,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> (MethodReport, PrefilterStats) {
    let graph = &data.bench.kg.graph;
    let lsei = build_lsei(data, sim, cfg);
    let options = SearchOptions::top(k);
    let name = format!("{}{} colAgg", sim.letter(), cfg);
    let mut reductions = Vec::new();
    let report = match &lsei {
        LseiVariant::Types(lsei) => {
            let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
            MethodReport::run(&name, queries, gt, |q| {
                let res = engine.search_prefiltered_aggregated(
                    &Query::new(q.tuples.clone()),
                    options,
                    lsei,
                    votes,
                );
                reductions.push(res.stats.reduction);
                res.table_ids()
            })
        }
        LseiVariant::Embeddings(lsei) => {
            let engine =
                ThetisEngine::new(graph, &data.bench.lake, EmbeddingCosine::new(&data.store));
            MethodReport::run(&name, queries, gt, |q| {
                let res = engine.search_prefiltered_aggregated(
                    &Query::new(q.tuples.clone()),
                    options,
                    lsei,
                    votes,
                );
                reductions.push(res.stats.reduction);
                res.table_ids()
            })
        }
    };
    let stats = PrefilterStats {
        mean_reduction: thetis::eval::metrics::mean(&reductions),
    };
    (report, stats)
}

/// Runs BM25 over text queries.
pub fn bm25_report(
    data: &BenchData,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> MethodReport {
    let index = Bm25Index::build(&data.bench.lake, Bm25Params::default());
    MethodReport::run("BM25text", queries, gt, |q| {
        index
            .search(&Bm25Index::text_query(&q.cell_texts(&data.bench.kg)), k)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    })
}

/// Runs the Starmie-like union-search baseline.
pub fn union_report(
    data: &BenchData,
    variant: UnionVariant,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> MethodReport {
    let graph = &data.bench.kg.graph;
    let union = UnionSearch::new(graph, &data.bench.lake, Some(&data.store));
    let name = match variant {
        UnionVariant::Strict => "SANTOS-like",
        UnionVariant::Embedding => "Starmie-like",
    };
    MethodReport::run(name, queries, gt, |q| {
        union
            .rank(&tuples_to_columns(&q.tuples), k, variant)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    })
}

/// Runs the D³L-like join-search baseline.
pub fn join_report(
    data: &BenchData,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> MethodReport {
    let join = JoinSearch::new(&data.bench.lake);
    MethodReport::run("D3L-like", queries, gt, |q| {
        join.rank(&tuples_to_columns(&q.tuples), k)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    })
}

/// Runs the TURL-like table-embedding baseline.
pub fn turl_report(
    data: &BenchData,
    queries: &[BenchQuery],
    gt: &GroundTruth,
    k: usize,
) -> MethodReport {
    let turl = TableEmbeddingSearch::build(&data.bench.lake, &data.store);
    MethodReport::run("TURL-like", queries, gt, |q| {
        turl.rank(&q.distinct_entities(), k)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> BenchData {
        BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4)
    }

    #[test]
    fn all_method_runners_produce_reports() {
        let d = data();
        let q = &d.bench.queries1;
        let gt = &d.bench.gt1;
        let stst = semantic_report(&d, Sim::Types, q, gt, 10, RowAgg::Max);
        assert_eq!(stst.per_query.len(), 4);
        let stse = semantic_report(&d, Sim::Embeddings, q, gt, 10, RowAgg::Max);
        assert_eq!(stse.name, "STSE");
        let (lsh, stats) = prefiltered_report(&d, Sim::Types, LshConfig::new(32, 8), 1, q, gt, 10);
        assert!(stats.mean_reduction >= 0.0 && stats.mean_reduction <= 1.0);
        assert_eq!(lsh.per_query.len(), 4);
        assert_eq!(bm25_report(&d, q, gt, 10).per_query.len(), 4);
        assert_eq!(join_report(&d, q, gt, 10).per_query.len(), 4);
        assert_eq!(turl_report(&d, q, gt, 10).per_query.len(), 4);
        assert_eq!(
            union_report(&d, UnionVariant::Embedding, q, gt, 10).name,
            "Starmie-like"
        );
    }

    #[test]
    fn optimized_scoring_matches_exhaustive_and_computes_less() {
        let d = data();
        let q = &d.bench.queries1;
        let gt = &d.bench.gt1;
        let (fast, fast_stats) =
            semantic_report_opts(&d, Sim::Types, "STST", q, gt, SearchOptions::top(10));
        let (slow, slow_stats) = semantic_report_opts(
            &d,
            Sim::Types,
            "STST-exh",
            q,
            gt,
            SearchOptions::exhaustive(10),
        );
        assert_eq!(fast.mean_ndcg10, slow.mean_ndcg10);
        assert_eq!(slow_stats.sigma_cached, 0);
        assert_eq!(slow_stats.tables_pruned, 0);
        assert!(
            fast_stats.sigma_computed * 2 <= slow_stats.sigma_computed,
            "memoization only cut σ evaluations from {} to {}",
            slow_stats.sigma_computed,
            fast_stats.sigma_computed
        );
    }
}
