//! Machine-readable run telemetry.
//!
//! Every `reproduce` invocation snapshots the observability registry
//! ([`thetis::obs`]) on exit and writes `BENCH_<experiment>.json` next to
//! the experiment's result files: total wall time, per-span totals
//! (nanoseconds, entries, self time), counter values, and latency
//! histograms. The `bench_gate` binary diffs two such files and fails on
//! wall-time regression, which is what the CI perf-smoke job runs.

use serde::{Deserialize, Serialize};

use crate::context::Ctx;

/// One counter at snapshot time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterRow {
    /// Registry name (e.g. `core.sigma_cached`).
    pub name: String,
    /// Monotonic value since process start.
    pub value: u64,
}

/// One span's accumulated timings at snapshot time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanRow {
    /// Registry name (e.g. `core.hungarian`).
    pub name: String,
    /// Wall nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Wall nanoseconds net of enclosed spans.
    pub self_ns: u64,
    /// Number of entries.
    pub count: u64,
    /// Mean nanoseconds per entry.
    pub mean_ns: u64,
}

/// One latency histogram at snapshot time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Registry name (e.g. `core.search_latency`).
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observations, nanoseconds.
    pub sum_ns: u64,
    /// Non-cumulative bucket counts; last is the +Inf overflow bucket.
    pub buckets: Vec<u64>,
}

impl HistogramRow {
    /// The `q`-quantile of the recorded latencies in nanoseconds, linearly
    /// interpolated within the containing bucket (see
    /// [`thetis::obs::HistogramSnapshot::percentile`] for the estimator).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        thetis::obs::HistogramSnapshot {
            name: "",
            buckets: self.buckets.clone(),
            sum_ns: self.sum_ns,
            count: self.count,
        }
        .percentile(q)
    }
}

/// One within-run sample of the server's rolling-window metrics, taken
/// while the benchmark load was running (serve experiments only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Milliseconds since the benchmark's load started.
    pub t_ms: u64,
    /// Windowed request rate at the sample.
    pub qps: f64,
    /// Windowed p50 latency, microseconds (absent while the window is
    /// empty).
    pub p50_us: Option<u64>,
    /// Windowed p99 latency, microseconds.
    pub p99_us: Option<u64>,
    /// Requests inside the window at the sample.
    pub window_requests: u64,
}

/// Experiments that sampled a server's rolling window during their run
/// park the series here for [`BenchReport::capture`] to pick up — the
/// capture happens at process exit, far from the experiment code.
static WINDOW_SERIES: std::sync::Mutex<Vec<WindowPoint>> = std::sync::Mutex::new(Vec::new());

/// Hands a within-run window series to the next [`BenchReport::capture`].
pub fn record_window_series(points: Vec<WindowPoint>) {
    *WINDOW_SERIES.lock().unwrap_or_else(|e| e.into_inner()) = points;
}

/// The `BENCH_<experiment>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Experiment (subcommand) name.
    pub experiment: String,
    /// Corpus scale the run used.
    pub scale: f64,
    /// Queries per corpus.
    pub n_queries: u64,
    /// End-to-end wall time of the run, seconds.
    pub wall_seconds: f64,
    /// All counters, name-ordered.
    pub counters: Vec<CounterRow>,
    /// All spans, name-ordered.
    pub spans: Vec<SpanRow>,
    /// All latency histograms, name-ordered.
    pub histograms: Vec<HistogramRow>,
    /// Within-run rolling-window samples (serve experiments; empty
    /// elsewhere, and absent from older snapshots).
    #[serde(default)]
    pub windows: Vec<WindowPoint>,
}

impl BenchReport {
    /// Captures the current observability snapshot into a report.
    pub fn capture(experiment: &str, scale: f64, n_queries: usize, wall_seconds: f64) -> Self {
        let snap = thetis::obs::snapshot();
        Self {
            experiment: experiment.to_string(),
            scale,
            n_queries: n_queries as u64,
            wall_seconds,
            counters: snap
                .counters
                .iter()
                .map(|c| CounterRow {
                    name: c.name.to_string(),
                    value: c.value,
                })
                .collect(),
            spans: snap
                .spans
                .iter()
                .map(|s| SpanRow {
                    name: s.name.to_string(),
                    total_ns: s.total_ns,
                    self_ns: s.self_ns,
                    count: s.count,
                    mean_ns: s.mean_ns(),
                })
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|h| HistogramRow {
                    name: h.name.to_string(),
                    count: h.count,
                    sum_ns: h.sum_ns,
                    buckets: h.buckets.clone(),
                })
                .collect(),
            windows: std::mem::take(&mut *WINDOW_SERIES.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// The total nanoseconds of span `name`, if present.
    pub fn span_total_ns(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.total_ns)
    }

    /// The self nanoseconds of span `name` (net of nested spans), if
    /// present.
    pub fn span_self_ns(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.self_ns)
    }

    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The latency histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramRow> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Snapshots the registry and writes `BENCH_<experiment>.json` (dashes in
/// the experiment name become underscores; an explicit `--threads N`
/// appends `_tN`, and a quantized `--kernel` appends `_f32`/`_i8`, so
/// per-thread-count and per-kernel baselines coexist) into the context's
/// output directory. Returns the captured report.
pub fn write_bench_report(ctx: &Ctx, experiment: &str, wall_seconds: f64) -> BenchReport {
    let report = BenchReport::capture(experiment, ctx.scale, ctx.n_queries, wall_seconds);
    let stem = format!(
        "BENCH_{}{}",
        experiment.replace('-', "_"),
        ctx.artifact_suffix()
    );
    ctx.write_json(&stem, &report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let report = BenchReport {
            experiment: "smoke".into(),
            scale: 0.002,
            n_queries: 4,
            wall_seconds: 1.25,
            counters: vec![CounterRow {
                name: "core.searches".into(),
                value: 12,
            }],
            spans: vec![SpanRow {
                name: "lsh.build".into(),
                total_ns: 5_000_000,
                self_ns: 4_000_000,
                count: 1,
                mean_ns: 5_000_000,
            }],
            histograms: vec![HistogramRow {
                name: "core.search_latency".into(),
                count: 12,
                sum_ns: 60_000_000,
                buckets: vec![0, 0, 0, 0, 12, 0, 0, 0, 0],
            }],
            windows: vec![WindowPoint {
                t_ms: 500,
                qps: 20.0,
                p50_us: Some(900),
                p99_us: Some(4_500),
                window_requests: 10,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.experiment, "smoke");
        assert_eq!(back.span_total_ns("lsh.build"), Some(5_000_000));
        assert_eq!(back.span_self_ns("lsh.build"), Some(4_000_000));
        assert_eq!(back.counter("core.searches"), Some(12));
        assert_eq!(back.histograms[0].buckets.len(), 9);
        // All 12 observations sit in the 1ms–10ms bucket: p50 interpolates
        // to mid-bucket rather than the 10ms upper bound.
        let h = back.histogram("core.search_latency").unwrap();
        assert_eq!(h.percentile(0.5), Some(1_000_000 + 9_000_000 / 2));
        // With 12 observations p99 lands on the last one: the bucket top —
        // but never beyond it (the old bound-only estimate capped here too).
        assert_eq!(h.percentile(0.99), Some(10_000_000));
        assert!(h.percentile(0.75).unwrap() < 10_000_000);
    }
}
