//! `reproduce` — regenerate every table and figure of the Thetis paper on
//! scaled synthetic corpora.
//!
//! ```sh
//! cargo run --release -p thetis-bench --bin reproduce -- all
//! cargo run --release -p thetis-bench --bin reproduce -- fig4 --scale 0.01
//! ```
//!
//! Subcommands: `table2`, `fig4`, `fig5`, `table3` (includes Table 4),
//! `scoring-cost`, `scaling`, `other-corpora` (WT2019 + GitTables),
//! `fig6`, `agg-ablation`, `bm25-prefilter`, `noisy-linking`, `all`.
//!
//! Flags: `--scale <f64>` (default 0.01 — 1/100 of each paper corpus),
//! `--queries <n>` (default 50), `--threads <n>` (scoring workers,
//! default all cores), `--out <dir>` (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;

use thetis_bench::experiments;
use thetis_bench::Ctx;

const USAGE: &str =
    "usage: reproduce <experiment> [--scale F] [--queries N] [--threads N] [--out DIR]
                     [--kernel f64|f32|i8] [--connect HOST:PORT]
experiments:
  table2         Table 2   corpus statistics (all four corpora)
  fig4           Figure 4  NDCG@10: STST/STSE, 6 LSH configs, BM25, union search
  fig5           Figure 5  recall@100/200 incl. STSTC/STSEC combinations
  table3         Tables 3+4  runtime and search-space reduction per LSH config
  scoring-cost   §7.3      per-table scoring cost, share spent in μ(T,Q)
  scaling        §7.4      synthetic corpora scaling (3 sizes)
  other-corpora  §7.4      WT2019 and GitTables measurements
  fig6           Figure 6  NDCG@10 vs entity-link coverage caps
  agg-ablation   §7.2      row aggregation max vs avg
  bm25-prefilter §7.3      BM25 as prefilter vs LSH
  noisy-linking  §7.5      degraded-linker robustness
  sim-ablation   §8        all four σ instantiations head to head
  relaxation     §8        query relaxation on over-specialized queries
  smoke          CI        quick perf-smoke workload (LSEI + scoring)
  delta-maintenance CI     incremental mutation vs full rebuild microbench
  serve          CI        open-loop QPS/latency bench of the resident
                           query service (in-process, or an external
                           server via --connect HOST:PORT)
  all            run everything above in order

Every run also snapshots the observability registry into
BENCH_<experiment>.json (wall time, per-span totals, counters) in the
output directory; see bench_gate for the CI regression check. An
explicit --threads N pins the scoring worker count and suffixes the
snapshot name (BENCH_<experiment>_tN.json) so per-thread-count
baselines coexist. --kernel selects the sigma kernel for embedding
similarity (f64 is the bit-exact reference; f32/i8 score from quantized
SoA slabs) and suffixes artifacts the same way (BENCH_smoke_t1_f32.json).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let mut scale = 0.01f64;
    let mut queries = 50usize;
    let mut threads = 0usize;
    let mut kernel = thetis::core::SigmaKernel::default();
    let mut out = PathBuf::from("results");
    let mut connect: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a float"));
                i += 2;
            }
            "--queries" => {
                queries = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries needs an integer"));
                i += 2;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"));
                i += 2;
            }
            "--kernel" => {
                kernel = args
                    .get(i + 1)
                    .and_then(|v| thetis::core::SigmaKernel::parse(v))
                    .unwrap_or_else(|| die("--kernel must be f64, f32 or i8"));
                i += 2;
            }
            "--out" => {
                out = args
                    .get(i + 1)
                    .map(PathBuf::from)
                    .unwrap_or_else(|| die("--out needs a path"));
                i += 2;
            }
            "--connect" => {
                connect = args
                    .get(i + 1)
                    .cloned()
                    .or_else(|| die("--connect needs HOST:PORT"));
                i += 2;
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if !(0.0..=1.0).contains(&scale) || scale <= 0.0 {
        die("--scale must be in (0, 1]");
    }

    let ctx = Ctx::new(scale, queries, out)
        .with_threads(threads)
        .with_kernel(kernel)
        .with_connect(connect);
    // THETIS_OBS=0 runs the experiments with telemetry fully off (the
    // BENCH_*.json snapshot then carries wall time but empty metrics).
    if !thetis::obs::env_disabled() {
        thetis::obs::set_enabled(true);
    }
    let start = std::time::Instant::now();
    let known = run_experiment(&ctx, &command);
    if !known {
        eprintln!("unknown experiment {command:?}\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let wall = start.elapsed().as_secs_f64();
    thetis_bench::write_bench_report(&ctx, &command, wall);
    eprintln!("[done] {command} in {wall:.1}s");
    ExitCode::SUCCESS
}

fn run_experiment(ctx: &Ctx, command: &str) -> bool {
    match command {
        "table2" => experiments::table2::run(ctx),
        "fig4" => experiments::fig4::run(ctx),
        "fig5" => experiments::fig5::run(ctx),
        "table3" | "table4" => experiments::table3::run(ctx),
        "scoring-cost" => experiments::scoring_cost::run(ctx),
        "scaling" => experiments::scaling::run(ctx),
        "other-corpora" | "wt2019" | "gittables" => experiments::other_corpora::run(ctx),
        "fig6" => experiments::fig6::run(ctx),
        "agg-ablation" => experiments::ablations::agg_ablation(ctx),
        "bm25-prefilter" => experiments::ablations::bm25_prefilter_ablation(ctx),
        "noisy-linking" => experiments::ablations::noisy_linking(ctx),
        "sim-ablation" => experiments::extensions::sim_ablation(ctx),
        "relaxation" => experiments::extensions::relaxation(ctx),
        "smoke" => experiments::smoke::run(ctx),
        "delta-maintenance" | "delta" => experiments::delta::run(ctx),
        "serve" => experiments::serve_bench::run(ctx),
        "all" => {
            for cmd in [
                "table2",
                "fig4",
                "fig5",
                "table3",
                "scoring-cost",
                "scaling",
                "other-corpora",
                "fig6",
                "agg-ablation",
                "bm25-prefilter",
                "noisy-linking",
                "sim-ablation",
                "relaxation",
            ] {
                eprintln!("\n===== {cmd} =====");
                run_experiment(ctx, cmd);
            }
            String::new()
        }
        _ => return false,
    };
    true
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
