//! `bench_history` — per-span trend report over `BENCH_*.json` snapshots.
//!
//! ```sh
//! bench_history [--dir results] [--span core.search] [--top N]
//! ```
//!
//! `reproduce` writes one `BENCH_<experiment>.json` per experiment run; the
//! committed `results/` directory accumulates them as the perf baselines CI
//! gates against. This tool reads every snapshot in a directory (sorted by
//! file name, so lexicographic experiment order doubles as the series
//! order), and renders the trend per span: self time across snapshots with
//! an ASCII sparkline, plus the wall-time and search-latency percentile
//! series. Point it at a directory holding dated copies of the same
//! experiment (`BENCH_smoke.json` from several commits) and the sparkline
//! is a literal time series; point it at `results/` as committed and it
//! compares experiments side by side.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use thetis::obs::sparkline;
use thetis_bench::BenchReport;

const USAGE: &str = "usage: bench_history [--dir DIR] [--span NAME] [--top N]
  --dir DIR    directory holding BENCH_*.json snapshots (default results)
  --span NAME  only report this span (default: all)
  --top N      keep the N spans with the largest latest self time (default 12)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from("results");
    let mut only_span: Option<String> = None;
    let mut top = 12usize;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--dir" => {
                dir = PathBuf::from(value(i));
                i += 2;
            }
            "--span" => {
                only_span = Some(value(i));
                i += 2;
            }
            "--top" => {
                top = value(i)
                    .parse()
                    .unwrap_or_else(|_| die("--top needs an integer"));
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
    }

    let snapshots = match load_dir(&dir) {
        Ok(s) => s,
        Err(e) => die(&e),
    };
    if snapshots.is_empty() {
        // An empty history is a normal state (fresh checkout, results/ not
        // yet populated by `reproduce`), not an error: report and succeed.
        println!(
            "bench_history: no benchmark files in {} — run `reproduce` to \
             record a first snapshot",
            dir.display()
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "bench history: {} snapshot(s) in {}",
        snapshots.len(),
        dir.display()
    );
    println!();

    // Run-level series: wall time and search-latency percentiles.
    println!(
        "{:<24} {:>7} {:>8} {:>9} {:>12} {:>12}",
        "snapshot", "scale", "queries", "wall s", "p50 ms", "p99 ms"
    );
    for (stem, report) in &snapshots {
        let pct = |q: f64| {
            report
                .histogram("core.search_latency")
                .and_then(|h| h.percentile(q))
                .map(|ns| format!("{:.3}", ns as f64 / 1e6))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{stem:<24} {:>7.3} {:>8} {:>9.2} {:>12} {:>12}",
            report.scale,
            report.n_queries,
            report.wall_seconds,
            pct(0.50),
            pct(0.99),
        );
    }
    println!();

    // Within-run rolling-window trajectory, for snapshots that carry one
    // (serve experiments sample the server's `metrics` op during load).
    let with_windows: Vec<_> = snapshots
        .iter()
        .filter(|(_, r)| !r.windows.is_empty())
        .collect();
    if !with_windows.is_empty() {
        println!("within-run trajectory (rolling window sampled during load):");
        for (stem, report) in &with_windows {
            let p99s: Vec<Option<u64>> = report.windows.iter().map(|w| w.p99_us).collect();
            let qps: Vec<Option<u64>> = report
                .windows
                .iter()
                .map(|w| Some(w.qps.round() as u64))
                .collect();
            let peak_qps = report.windows.iter().map(|w| w.qps).fold(0.0, f64::max);
            let peak_p99 = report.windows.iter().filter_map(|w| w.p99_us).max();
            println!(
                "  {stem:<22} {:>3} sample(s)  peak qps {peak_qps:>7.1}  peak p99 {:>8}",
                report.windows.len(),
                peak_p99.map_or_else(|| "-".into(), |v| format!("{v}us")),
            );
            println!("  {:<22} qps {}", "", sparkline(&qps));
            println!("  {:<22} p99 {}", "", sparkline(&p99s));
        }
        println!();
    }

    // Span-level series: self time per snapshot, newest-snapshot-ranked.
    let mut series: BTreeMap<String, Vec<Option<u64>>> = BTreeMap::new();
    for (idx, (_, report)) in snapshots.iter().enumerate() {
        for span in &report.spans {
            if only_span.as_ref().is_some_and(|s| s != &span.name) {
                continue;
            }
            series
                .entry(span.name.clone())
                .or_insert_with(|| vec![None; snapshots.len()])[idx] = Some(span.self_ns);
        }
    }
    if series.is_empty() {
        if let Some(span) = only_span {
            eprintln!("bench_history: span {span:?} appears in no snapshot");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let mut rows: Vec<(&String, &Vec<Option<u64>>)> = series.iter().collect();
    rows.sort_by_key(|(name, points)| {
        // Largest latest self time first; name breaks ties deterministically.
        let latest = points.iter().rev().flatten().next().copied().unwrap_or(0);
        (std::cmp::Reverse(latest), name.to_string())
    });
    let shown = rows.len().min(top.max(1));

    println!("span self-time trend (ms per snapshot, oldest → newest):");
    println!(
        "{:<26} {:>12} {:>12} {:>8}  trend",
        "span", "first ms", "latest ms", "Δ%"
    );
    for (name, points) in rows.iter().take(shown) {
        let known: Vec<u64> = points.iter().copied().flatten().collect();
        let first = *known.first().expect("series has a point");
        let latest = *known.last().expect("series has a point");
        let delta = if first == 0 {
            "-".to_string()
        } else {
            format!("{:+.1}", (latest as f64 / first as f64 - 1.0) * 100.0)
        };
        println!(
            "{name:<26} {:>12.2} {:>12.2} {:>8}  {}",
            first as f64 / 1e6,
            latest as f64 / 1e6,
            delta,
            sparkline(points)
        );
    }
    if rows.len() > shown {
        println!(
            "({} more span(s) below the --top {} cut)",
            rows.len() - shown,
            shown
        );
    }
    ExitCode::SUCCESS
}

/// Reads every `BENCH_*.json` in `dir`, file-name-sorted, as
/// `(file stem, report)` pairs. Unparseable files are skipped with a
/// warning so one corrupt snapshot cannot hide the rest of the history.
fn load_dir(dir: &Path) -> Result<Vec<(String, BenchReport)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        match serde_json::from_str::<BenchReport>(&text) {
            Ok(report) => out.push((stem, report)),
            Err(e) => eprintln!("bench_history: skipping {} ({e})", path.display()),
        }
    }
    Ok(out)
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
