//! `bench_gate` — CI perf regression check over `BENCH_*.json` reports.
//!
//! ```sh
//! bench_gate --baseline results/BENCH_smoke.json \
//!            --current  ci-out/BENCH_smoke.json  [--threshold 0.20]
//! ```
//!
//! Compares the current run's wall time against the committed baseline and
//! exits non-zero when it regresses by more than the threshold (default
//! 20%). A missing baseline is a warning, not a failure, so the first run
//! on a fresh branch can bootstrap one.
//!
//! Per-span *self* times gate too (default 25%, `--span-threshold`), so a
//! localized regression — say the Hungarian step doubling — fails the job
//! even when faster neighbors hide it from the wall-time ratio. Only spans
//! whose baseline self time is at least [`SPAN_NOISE_FLOOR_NS`] participate:
//! sub-50ms spans are dominated by scheduler noise on shared CI runners and
//! would flap.

use std::path::PathBuf;
use std::process::ExitCode;

use thetis_bench::BenchReport;

/// Spans with baseline self time below this never gate (50 ms): at that
/// magnitude a single page fault or scheduler preemption exceeds any real
/// regression signal.
const SPAN_NOISE_FLOOR_NS: u64 = 50_000_000;

/// Histograms with a baseline p99 below this never gate (1 ms): the
/// latency buckets are decades, so below a millisecond the interpolated
/// percentile is dominated by bucket shape, not by the workload.
const P99_NOISE_FLOOR_NS: u64 = 1_000_000;

const USAGE: &str = "usage: bench_gate --baseline FILE --current FILE [--threshold F]
  --baseline FILE     committed BENCH_*.json to compare against
  --current FILE      freshly produced BENCH_*.json
  --threshold F       allowed wall-time regression fraction (default 0.20)
  --span-threshold F  allowed per-span self-time regression fraction
                      (default 0.25; spans under 50ms baseline self time
                      are exempt as noise)
  --p99-threshold F   also gate each latency histogram's p99 against the
                      baseline, allowing a regression fraction of F
                      (off by default; histograms with a baseline p99
                      under 1ms are exempt as noise)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut threshold = 0.20f64;
    let mut span_threshold = 0.25f64;
    let mut p99_threshold: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .unwrap_or_else(|| die(&format!("{} needs a value", args[i])))
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--current" => {
                current = Some(PathBuf::from(value(i)));
                i += 2;
            }
            "--threshold" => {
                threshold = value(i)
                    .parse()
                    .unwrap_or_else(|_| die("--threshold needs a float"));
                i += 2;
            }
            "--span-threshold" => {
                span_threshold = value(i)
                    .parse()
                    .unwrap_or_else(|_| die("--span-threshold needs a float"));
                i += 2;
            }
            "--p99-threshold" => {
                p99_threshold = Some(
                    value(i)
                        .parse()
                        .unwrap_or_else(|_| die("--p99-threshold needs a float")),
                );
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown flag {other}\n{USAGE}")),
        }
    }
    let Some(current) = current else {
        die(&format!("--current is required\n{USAGE}"));
    };
    let Some(baseline) = baseline else {
        die(&format!("--baseline is required\n{USAGE}"));
    };
    if !(0.0..10.0).contains(&threshold) {
        die("--threshold must be in [0, 10)");
    }
    if !(0.0..10.0).contains(&span_threshold) {
        die("--span-threshold must be in [0, 10)");
    }
    if p99_threshold.is_some_and(|t| !(0.0..10.0).contains(&t)) {
        die("--p99-threshold must be in [0, 10)");
    }

    let cur = match load(&current) {
        Ok(r) => r,
        Err(e) => die(&format!("cannot read current report: {e}")),
    };
    let base = match load(&baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "bench_gate: no usable baseline at {} ({e}); passing. \
                 Commit the current report to create one.",
                baseline.display()
            );
            return ExitCode::SUCCESS;
        }
    };

    println!(
        "bench_gate: {} wall {:.2}s baseline vs {:.2}s current",
        cur.experiment, base.wall_seconds, cur.wall_seconds
    );
    print_span_table(&base, &cur);

    let mut failed = false;

    // Per-span self-time gate: spans loud enough to trust (baseline self
    // time over the noise floor) must not regress past the span threshold.
    for span in &base.spans {
        if span.self_ns < SPAN_NOISE_FLOOR_NS {
            continue;
        }
        let Some(cur_self) = cur.span_self_ns(&span.name) else {
            // A gated span that vanished means the instrumentation moved;
            // surface it without failing (the wall gate still protects).
            eprintln!(
                "bench_gate: note — span {} present in baseline but not in current run",
                span.name
            );
            continue;
        };
        let span_ratio = cur_self as f64 / span.self_ns as f64;
        if span_ratio > 1.0 + span_threshold {
            eprintln!(
                "bench_gate: FAIL — span {} self time regressed {:.1}% \
                 ({:.2}ms -> {:.2}ms, allowed +{:.0}%)",
                span.name,
                (span_ratio - 1.0) * 100.0,
                span.self_ns as f64 / 1e6,
                cur_self as f64 / 1e6,
                span_threshold * 100.0
            );
            failed = true;
        }
    }

    // Optional latency gate: every baseline histogram loud enough to trust
    // (p99 over the noise floor) must keep its p99 within the threshold.
    if let Some(p99_threshold) = p99_threshold {
        for hist in &base.histograms {
            let Some(base_p99) = hist.percentile(0.99).filter(|&ns| ns >= P99_NOISE_FLOOR_NS)
            else {
                continue;
            };
            let Some(cur_p99) = cur.histogram(&hist.name).and_then(|h| h.percentile(0.99)) else {
                eprintln!(
                    "bench_gate: note — histogram {} present in baseline but not in current run",
                    hist.name
                );
                continue;
            };
            let ratio = cur_p99 as f64 / base_p99 as f64;
            if ratio > 1.0 + p99_threshold {
                eprintln!(
                    "bench_gate: FAIL — {} p99 regressed {:.1}% \
                     ({:.2}ms -> {:.2}ms, allowed +{:.0}%)",
                    hist.name,
                    (ratio - 1.0) * 100.0,
                    base_p99 as f64 / 1e6,
                    cur_p99 as f64 / 1e6,
                    p99_threshold * 100.0
                );
                failed = true;
            } else {
                println!(
                    "bench_gate: OK — {} p99 {:.2}ms vs {:.2}ms baseline (allowed +{:.0}%)",
                    hist.name,
                    cur_p99 as f64 / 1e6,
                    base_p99 as f64 / 1e6,
                    p99_threshold * 100.0
                );
            }
        }
    }

    if base.wall_seconds <= 0.0 {
        eprintln!("bench_gate: baseline wall time is zero; skipping wall gate");
    } else {
        let ratio = cur.wall_seconds / base.wall_seconds;
        if ratio > 1.0 + threshold {
            eprintln!(
                "bench_gate: FAIL — wall time regressed {:.1}% (allowed {:.0}%)",
                (ratio - 1.0) * 100.0,
                threshold * 100.0
            );
            failed = true;
        } else {
            println!(
                "bench_gate: OK — wall time {}{:.1}% vs baseline (allowed +{:.0}%)",
                if ratio >= 1.0 { "+" } else { "" },
                (ratio - 1.0) * 100.0,
                threshold * 100.0
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load(path: &PathBuf) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e| format!("{e:?}"))
}

/// Prints baseline-vs-current totals for every span either run recorded.
fn print_span_table(base: &BenchReport, cur: &BenchReport) {
    let mut names: Vec<&str> = base
        .spans
        .iter()
        .chain(cur.spans.iter())
        .map(|s| s.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    if names.is_empty() {
        return;
    }
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>14}",
        "span", "base ms", "cur ms", "base self ms", "cur self ms"
    );
    let fmt = |ns: Option<u64>| {
        ns.map(|ns| format!("{:.2}", ns as f64 / 1e6))
            .unwrap_or_else(|| "-".into())
    };
    for name in names {
        let gated = base
            .span_self_ns(name)
            .is_some_and(|ns| ns >= SPAN_NOISE_FLOOR_NS);
        println!(
            "{name:<26} {:>12} {:>12} {:>14} {:>14} {}",
            fmt(base.span_total_ns(name)),
            fmt(cur.span_total_ns(name)),
            fmt(base.span_self_ns(name)),
            fmt(cur.span_self_ns(name)),
            if gated { "[gated]" } else { "" }
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
