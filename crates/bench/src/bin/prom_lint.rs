//! `prom_lint` — validates a Prometheus text-exposition file.
//!
//! ```sh
//! prom_lint metrics_snapshot.prom [more.prom ...]
//! ```
//!
//! Runs [`thetis::obs::lint_prometheus_text`] over each file: every sample
//! line must parse, histogram `_count`/`_sum`/`+Inf` invariants must hold,
//! and `# TYPE` declarations must precede their series. Prints one line per
//! violation and exits nonzero if any file fails — CI points it at the
//! `.prom` file the resident server's metrics writer leaves behind.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: prom_lint FILE [FILE ...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("prom_lint: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let errors = thetis::obs::lint_prometheus_text(&text);
        if errors.is_empty() {
            let samples = text
                .lines()
                .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
                .count();
            println!("prom_lint: {path}: ok ({samples} sample(s))");
        } else {
            failed = true;
            for err in &errors {
                eprintln!("prom_lint: {path}: {err}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
