//! Per-table scoring cost (§7.3): one `score_table` call per iteration,
//! for both σ instantiations and both query sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thetis::core::search::{score_table, ScoreTimings};
use thetis::prelude::*;
use thetis_bench::BenchData;

fn bench_scoring(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4);
    let graph = &data.bench.kg.graph;
    let inform = Informativeness::from_lake(&data.bench.lake);
    let type_sim = TypeJaccard::new(graph);
    let emb_sim = EmbeddingCosine::new(&data.store);
    // Pick a big linked table as the scoring target.
    let target = data
        .bench
        .lake
        .iter()
        .max_by_key(|(_, t)| t.n_rows())
        .map(|(id, _)| id)
        .unwrap();

    let mut group = c.benchmark_group("score_table");
    for (qname, query) in [
        ("1-tuple", Query::new(data.bench.queries1[0].tuples.clone())),
        ("5-tuple", Query::new(data.bench.queries5[0].tuples.clone())),
    ] {
        group.bench_with_input(BenchmarkId::new("types", qname), &query, |b, q| {
            b.iter(|| {
                let mut t = ScoreTimings::default();
                score_table(
                    q,
                    &data.bench.lake,
                    target,
                    &type_sim,
                    &inform,
                    RowAgg::Max,
                    &mut t,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("embeddings", qname), &query, |b, q| {
            b.iter(|| {
                let mut t = ScoreTimings::default();
                score_table(
                    q,
                    &data.bench.lake,
                    target,
                    &emb_sim,
                    &inform,
                    RowAgg::Max,
                    &mut t,
                )
            })
        });
    }
    group.finish();
}

/// Before/after the scoring optimizations: the same full-lake search with
/// σ memoization + upper-bound pruning on (default) versus off.
fn bench_search_modes(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4);
    let graph = &data.bench.kg.graph;
    let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
    let query = Query::new(data.bench.queries5[0].tuples.clone());

    // One-off σ accounting next to the timings: the optimized path must
    // return the identical ranking while computing at most half the σ.
    let fast = engine.search(&query, SearchOptions::top(10));
    let slow = engine.search(&query, SearchOptions::exhaustive(10));
    assert_eq!(fast.ranked, slow.ranked, "optimized ranking diverged");
    assert!(
        fast.stats.sigma_computed() * 2 <= slow.stats.sigma_computed(),
        "memoization only cut σ evaluations from {} to {}",
        slow.stats.sigma_computed(),
        fast.stats.sigma_computed()
    );
    println!(
        "search_modes σ: exhaustive {} vs optimized {} ({:.1}x drop, hit rate {:.2}, {} tables pruned)",
        slow.stats.sigma_computed(),
        fast.stats.sigma_computed(),
        slow.stats.sigma_computed() as f64 / fast.stats.sigma_computed().max(1) as f64,
        fast.stats.sigma_hit_rate(),
        fast.stats.tables_pruned()
    );

    let mut group = c.benchmark_group("search_modes");
    group.bench_function("optimized", |b| {
        b.iter(|| engine.search(&query, SearchOptions::top(10)))
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| engine.search(&query, SearchOptions::exhaustive(10)))
    });
    group.finish();
}

criterion_group!(benches, bench_scoring, bench_search_modes);
criterion_main!(benches);
