//! Per-table scoring cost (§7.3): one `score_table` call per iteration,
//! for both σ instantiations and both query sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thetis::core::search::{score_table, ScoreTimings};
use thetis::prelude::*;
use thetis_bench::BenchData;

fn bench_scoring(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4);
    let graph = &data.bench.kg.graph;
    let inform = Informativeness::from_lake(&data.bench.lake);
    let type_sim = TypeJaccard::new(graph);
    let emb_sim = EmbeddingCosine::new(&data.store);
    // Pick a big linked table as the scoring target.
    let target = data
        .bench
        .lake
        .iter()
        .max_by_key(|(_, t)| t.n_rows())
        .map(|(id, _)| id)
        .unwrap();

    let mut group = c.benchmark_group("score_table");
    for (qname, query) in [
        ("1-tuple", Query::new(data.bench.queries1[0].tuples.clone())),
        ("5-tuple", Query::new(data.bench.queries5[0].tuples.clone())),
    ] {
        group.bench_with_input(
            BenchmarkId::new("types", qname),
            &query,
            |b, q| {
                b.iter(|| {
                    let mut t = ScoreTimings::default();
                    score_table(q, &data.bench.lake, target, &type_sim, &inform, RowAgg::Max, &mut t)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("embeddings", qname),
            &query,
            |b, q| {
                b.iter(|| {
                    let mut t = ScoreTimings::default();
                    score_table(q, &data.bench.lake, target, &emb_sim, &inform, RowAgg::Max, &mut t)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
