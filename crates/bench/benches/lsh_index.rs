//! LSEI costs (§6): signature computation, index construction, and the
//! voting prefilter lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thetis::lsh::hyperplane::RandomHyperplanes;
use thetis::lsh::lsei::LseiMode;
use thetis::lsh::minhash::MinHasher;
use thetis::lsh::shingle::type_pair_shingles;
use thetis::prelude::*;
use thetis_bench::BenchData;

fn bench_signatures(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0004, 4);
    let graph = &data.bench.kg.graph;
    let entity = data.bench.queries1[0].tuples[0][0];
    let filter = TypeFilter::from_lake(&data.bench.lake, graph, 0.5);

    let mut group = c.benchmark_group("signatures");
    for nv in [30usize, 32, 128] {
        let hasher = MinHasher::new(nv, 7);
        let shingles = type_pair_shingles(graph.types_of(entity), &filter);
        group.bench_with_input(BenchmarkId::new("minhash", nv), &shingles, |b, s| {
            b.iter(|| hasher.sign(std::hint::black_box(s)))
        });
        let planes = RandomHyperplanes::new(data.store.dim(), nv, 7);
        let v = data.store.get(entity);
        group.bench_with_input(BenchmarkId::new("hyperplane", nv), &v, |b, v| {
            b.iter(|| planes.sign(std::hint::black_box(v)))
        });
    }
    group.finish();
}

fn bench_lsei(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0008, 4);
    let graph = &data.bench.kg.graph;
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&data.bench.lake, graph, 0.5);

    let mut group = c.benchmark_group("lsei");
    group.sample_size(20);
    group.bench_function("build_types", |b| {
        b.iter(|| {
            Lsei::build(
                &data.bench.lake,
                TypeSigner::new(graph, filter.clone(), cfg, 9),
                cfg,
                LseiMode::Entity,
            )
        })
    });
    let lsei = Lsei::build(
        &data.bench.lake,
        TypeSigner::new(graph, filter.clone(), cfg, 9),
        cfg,
        LseiMode::Entity,
    );
    let entities = data.bench.queries5[0].distinct_entities();
    for votes in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("prefilter", votes), &entities, |b, e| {
            b.iter(|| lsei.prefilter(std::hint::black_box(e), votes))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_signatures, bench_lsei);
criterion_main!(benches);
