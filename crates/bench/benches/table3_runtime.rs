//! Table 3 in miniature: brute-force search vs LSH-prefiltered search for
//! the paper's configurations, one query per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thetis::lsh::lsei::LseiMode;
use thetis::prelude::*;
use thetis_bench::BenchData;

fn bench_prefiltered(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0008, 4);
    let graph = &data.bench.kg.graph;
    let engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
    let filter = TypeFilter::from_lake(&data.bench.lake, graph, 0.5);
    let options = SearchOptions {
        k: 10,
        threads: 1,
        ..SearchOptions::default()
    };
    let query = Query::new(data.bench.queries5[0].tuples.clone());

    let mut group = c.benchmark_group("table3_runtime");
    group.sample_size(20);
    group.bench_function("brute_force", |b| {
        b.iter(|| engine.search(std::hint::black_box(&query), options))
    });
    for cfg in LshConfig::paper_configs() {
        let lsei = Lsei::build(
            &data.bench.lake,
            TypeSigner::new(graph, filter.clone(), cfg, 9),
            cfg,
            LseiMode::Entity,
        );
        for votes in [1usize, 3] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("T{cfg} v{votes}")),
                &lsei,
                |b, lsei| {
                    b.iter(|| {
                        engine.search_prefiltered(
                            std::hint::black_box(&query),
                            options,
                            lsei,
                            votes,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_prefiltered);
criterion_main!(benches);
