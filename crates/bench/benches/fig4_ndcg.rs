//! End-to-end search throughput behind Figure 4: one full semantic search
//! per iteration, brute force, for both σ instantiations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thetis::prelude::*;
use thetis_bench::BenchData;

fn bench_search(c: &mut Criterion) {
    let data = BenchData::build(BenchmarkKind::Wt2015, 0.0008, 4);
    let graph = &data.bench.kg.graph;
    let type_engine = ThetisEngine::new(graph, &data.bench.lake, TypeJaccard::new(graph));
    let emb_engine = ThetisEngine::new(graph, &data.bench.lake, EmbeddingCosine::new(&data.store));
    let options = SearchOptions {
        k: 10,
        threads: 1, // deterministic work per iteration
        ..SearchOptions::default()
    };

    let mut group = c.benchmark_group("search_brute_force");
    group.sample_size(20);
    for (qname, query) in [
        ("1-tuple", Query::new(data.bench.queries1[0].tuples.clone())),
        ("5-tuple", Query::new(data.bench.queries5[0].tuples.clone())),
    ] {
        group.bench_with_input(BenchmarkId::new("types", qname), &query, |b, q| {
            b.iter(|| type_engine.search(std::hint::black_box(q), options))
        });
        group.bench_with_input(BenchmarkId::new("embeddings", qname), &query, |b, q| {
            b.iter(|| emb_engine.search(std::hint::black_box(q), options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
