//! Micro-benchmark of the Hungarian assignment (the dominant cost of
//! table scoring, §7.3): typical Thetis shapes are tiny (query width ×
//! table columns), so constant factors matter more than asymptotics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use thetis::core::hungarian::max_assignment;

fn random_matrix(k: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| (0..n).map(|_| rng.random_range(0.0..1.0)).collect())
        .collect()
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for (k, n) in [(3, 6), (5, 12), (10, 20), (25, 50)] {
        let matrix = random_matrix(k, n, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}x{n}")),
            &matrix,
            |b, m| b.iter(|| max_assignment(std::hint::black_box(m))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hungarian);
criterion_main!(benches);
