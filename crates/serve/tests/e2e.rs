//! End-to-end tests of the resident query service over real TCP sockets:
//! bit-identity with the one-shot engine, admission control, per-request
//! deadlines, and epoch-pinned snapshots under mid-serve mutation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use thetis_core::{SearchOptions, ThetisEngine, TypeJaccard};
use thetis_corpus::{Benchmark, BenchmarkConfig, BenchmarkKind};
use thetis_datalake::{DataLake, EntityLinker, ExactLabelLinker};
use thetis_kg::KnowledgeGraph;
use thetis_lsh::lsei::{Lsei, LseiMode, TypeSigner};
use thetis_lsh::{LshConfig, TypeFilter};
use thetis_serve::{
    parse_query_spec, serve, Request, Response, RunningServer, Server, ServerConfig,
};

/// The demo world, exactly as `thetis-cli --demo` constructs it.
fn demo_world() -> (KnowledgeGraph, DataLake, Vec<String>) {
    let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
    let graph = bench.kg.graph;
    let mut lake = bench.lake;
    ExactLabelLinker::new(&graph).link_lake(&mut lake);
    // Query specs phrased the way a CLI user would: label lists.
    let specs = bench
        .queries1
        .iter()
        .chain(bench.queries5.iter())
        .map(|q| {
            q.tuples
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&e| graph.label(e).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect();
    (graph, lake, specs)
}

fn start(config: ServerConfig) -> (RunningServer, Vec<String>) {
    let (graph, lake, specs) = demo_world();
    let server = Server::new(graph, lake, None, config);
    (serve(server).unwrap(), specs)
}

/// One request over its own connection, like an independent client.
fn send(addr: std::net::SocketAddr, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    serde_json::from_str(&reply).unwrap()
}

#[test]
fn concurrent_clients_match_the_oneshot_engine_bit_for_bit() {
    let (running, specs) = start(ServerConfig {
        threads: 1,
        // Every spec is in flight at once; this test is about identity,
        // not shedding.
        max_inflight: 64,
        ..ServerConfig::default()
    });
    let addr = running.addr();

    // The reference: the exact one-shot CLI `--demo --lsh` pipeline, run
    // in-process against an identically constructed world.
    let (graph, lake, _) = demo_world();
    let cfg = LshConfig::recommended();
    let filter = TypeFilter::from_lake(&lake, &graph, 0.5);
    let lsei = Lsei::build(
        &lake,
        TypeSigner::new(&graph, filter, cfg, 42),
        cfg,
        LseiMode::Entity,
    );
    let engine = ThetisEngine::new(&graph, &lake, TypeJaccard::new(&graph));
    let expected: Vec<Vec<(u64, u64)>> = specs
        .iter()
        .map(|spec| {
            let (query, _) = parse_query_spec(spec, &graph);
            engine
                .search_prefiltered_resilient(
                    &query,
                    SearchOptions::top(10),
                    Some(&lsei),
                    1,
                    &thetis_obs::QueryTrace::disabled(),
                )
                .ranked
                .iter()
                .map(|&(tid, score)| (tid.0 as u64, score.to_bits()))
                .collect()
        })
        .collect();

    // Several rounds of concurrent clients, every query in flight at once.
    for _round in 0..3 {
        let got: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(move || send(addr, &Request::search(spec))))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let resp = h.join().unwrap();
                    assert!(resp.is_ok(), "unexpected response: {resp:?}");
                    resp.ranked
                        .unwrap()
                        .iter()
                        .map(|hit| (hit.table, hit.score_bits))
                        .collect()
                })
                .collect()
        });
        assert_eq!(got, expected, "server ranking diverged from one-shot");
    }

    // The repeated rounds re-asked every σ pair: the shared memo must have
    // served some of them.
    let stats = send(addr, &Request::op("stats")).stats.unwrap();
    assert!(
        stats.cache_served > 0 && stats.cache_hit_rate > 0.0,
        "shared cache never hit across repeated queries: {stats:?}"
    );
    running.shutdown();
}

#[test]
fn saturated_server_sheds_with_overloaded() {
    let (running, specs) = start(ServerConfig {
        max_inflight: 1,
        allow_debug: true,
        threads: 1,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let spec = specs[0].clone();

    // Fill the only slot with a request parked mid-flight...
    let held = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            let mut req = Request::search(&spec);
            req.debug_hold_ms = Some(600);
            send(addr, &req)
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    // ...so a second search must be shed, immediately and explicitly.
    let shed = send(addr, &Request::search(&spec));
    assert_eq!(shed.status, "overloaded", "expected shedding: {shed:?}");
    assert!(shed.ranked.is_none());

    // The held request still completes normally: shedding is load control,
    // not failure.
    let first = held.join().unwrap();
    assert!(first.is_ok(), "held request failed: {first:?}");
    let stats = send(addr, &Request::op("stats")).stats.unwrap();
    assert!(stats.shed >= 1, "shed counter not bumped: {stats:?}");
    running.shutdown();
}

#[test]
fn expired_deadline_degrades_instead_of_failing() {
    let (running, specs) = start(ServerConfig::default());
    let mut req = Request::search(&specs[0]);
    req.deadline_ms = Some(0); // already expired when scoring starts
    let resp = send(running.addr(), &req);
    assert!(
        resp.is_ok(),
        "deadline expiry must not be an error: {resp:?}"
    );
    assert_eq!(resp.degraded, Some(true));
    assert!(
        resp.degraded_reason
            .as_deref()
            .unwrap_or_default()
            .contains(&"deadline".to_string()),
        "missing deadline reason: {resp:?}"
    );
    running.shutdown();
}

#[test]
fn mutation_advances_the_epoch_and_invalidates_the_shared_cache() {
    let (running, specs) = start(ServerConfig {
        max_inflight: 4,
        allow_debug: true,
        threads: 1,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let server: Arc<Server> = Arc::clone(running.server());
    let spec = specs[0].clone();
    let epoch0 = server.epoch();

    // Reference ranking at the initial epoch.
    let baseline = send(addr, &Request::search(&spec));
    assert_eq!(baseline.epoch, Some(epoch0));
    let baseline_bits: Vec<(u64, u64)> = baseline
        .ranked
        .as_deref()
        .unwrap()
        .iter()
        .map(|h| (h.table, h.score_bits))
        .collect();

    // Park one query mid-flight: it pinned the epoch-0 snapshot.
    let held = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            let mut req = Request::search(&spec);
            req.debug_hold_ms = Some(500);
            send(addr, &req)
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    // Mutate the lake while that query is still in flight.
    let mut add = Request::op("add_table");
    add.name = Some("mid_serve_arrival".into());
    add.csv = Some("col_a,col_b\nalpha,beta\n".into());
    let mutated = send(addr, &add);
    assert!(mutated.is_ok(), "add_table failed: {mutated:?}");
    assert_eq!(mutated.epoch, Some(epoch0 + 1), "epoch must advance");

    // The pinned in-flight query is unaffected: same epoch, same bits.
    let pinned = held.join().unwrap();
    assert!(pinned.is_ok(), "held query failed: {pinned:?}");
    assert_eq!(
        pinned.epoch,
        Some(epoch0),
        "in-flight query must stay pinned"
    );
    let pinned_bits: Vec<(u64, u64)> = pinned
        .ranked
        .as_deref()
        .unwrap()
        .iter()
        .map(|h| (h.table, h.score_bits))
        .collect();
    assert_eq!(pinned_bits, baseline_bits);

    // The next query lands on the new epoch, and its first touch of the
    // shared cache evicts the stale entries exactly once.
    let invalidations_before = send(addr, &Request::op("stats"))
        .stats
        .unwrap()
        .cache_invalidations;
    let fresh = send(addr, &Request::search(&spec));
    assert_eq!(fresh.epoch, Some(epoch0 + 1));
    let stats = send(addr, &Request::op("stats")).stats.unwrap();
    assert_eq!(
        stats.cache_invalidations,
        invalidations_before + 1,
        "epoch advance must invalidate the shared cache once: {stats:?}"
    );
    running.shutdown();
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    let (running, specs) = start(ServerConfig::default());
    let addr = running.addr();

    // Malformed JSON keeps the connection usable for the next line.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let resp: Response = serde_json::from_str(&reply).unwrap();
    assert_eq!(resp.status, "error");
    let mut line = serde_json::to_string(&Request::op("ping")).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    let resp: Response = serde_json::from_str(&reply).unwrap();
    assert!(resp.is_ok(), "connection died after a bad line: {resp:?}");

    // Unknown ops, unresolvable queries, and disabled debug holds are
    // explicit errors.
    assert_eq!(send(addr, &Request::op("frobnicate")).status, "error");
    assert_eq!(
        send(addr, &Request::search("no such entity label")).status,
        "error"
    );
    let mut held = Request::search(&specs[0]);
    held.debug_hold_ms = Some(10);
    assert_eq!(send(addr, &held).status, "error");

    // remove_table round-trips through the mutation path.
    let (graph, lake, _) = demo_world();
    drop(graph);
    let victim = lake.tables()[0].name.clone();
    let mut remove = Request::op("remove_table");
    remove.name = Some(victim);
    let resp = send(addr, &remove);
    assert!(resp.is_ok(), "remove_table failed: {resp:?}");
    running.shutdown();
}

/// Canonical form of an LSEI for equivalence checks: epoch, n_tables,
/// per-band sorted buckets (sorted contents), sorted postings. Bucket
/// *order* within a band and posting-map iteration order are
/// implementation noise; everything else must match a rebuild exactly.
type LseiCanon = (u64, usize, Vec<Vec<(u64, Vec<u32>)>>, Vec<(u32, Vec<u32>)>);

fn canonicalize(lsei: &Lsei<TypeSigner<'_>>) -> LseiCanon {
    let (_cfg, _mode, index, postings, n_tables, epoch) = lsei.parts();
    let buckets = index
        .groups()
        .iter()
        .map(|group| {
            let mut band: Vec<(u64, Vec<u32>)> = group
                .iter()
                .map(|(&key, items)| {
                    let mut items = items.clone();
                    items.sort_unstable();
                    (key, items)
                })
                .collect();
            band.sort_unstable();
            band
        })
        .collect();
    let mut posts: Vec<(u32, Vec<u32>)> = postings
        .iter()
        .map(|(&e, tids)| (e.0, tids.iter().map(|t| t.0).collect()))
        .collect();
    posts.sort_unstable();
    (epoch, n_tables, buckets, posts)
}

#[test]
fn delta_maintained_lsei_matches_a_rebuild_after_mutations() {
    let (running, specs) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let server: Arc<Server> = Arc::clone(running.server());

    let assert_matches_rebuild = |when: &str| {
        let rebuilt = server.rebuild_lsei().expect("use_lsei is on");
        server.with_lsei(|live| {
            let live = live.expect("use_lsei is on");
            assert_eq!(
                canonicalize(live),
                canonicalize(&rebuilt),
                "delta-maintained LSEI diverged from rebuild {when}"
            );
        });
    };
    assert_matches_rebuild("at the initial epoch");

    // Ingest a table whose cells link to real KG entities (query specs are
    // entity labels), so the delta path exercises posting growth *and*
    // first-time entity signing — not just the unlinked-cell no-op.
    let labels: Vec<&str> = specs[0].split([',', ';']).collect();
    let mut add = Request::op("add_table");
    add.name = Some("delta_linked".into());
    add.csv = Some(format!("linked_col\n{}\n", labels.join("\n")));
    assert!(send(addr, &add).is_ok());
    assert_matches_rebuild("after add_table (linked entities)");

    // An all-unlinked table still advances the epoch and must stay
    // equivalent (no postings change, n_tables grows).
    let mut add2 = Request::op("add_table");
    add2.name = Some("delta_unlinked".into());
    add2.csv = Some("col_a,col_b\nalpha,beta\n".into());
    assert!(send(addr, &add2).is_ok());
    assert_matches_rebuild("after add_table (unlinked)");

    // Remove a seed table: postings shrink and entities left table-less
    // must be evicted from the band buckets, exactly as a rebuild would.
    let (_, lake, _) = demo_world();
    let mut remove = Request::op("remove_table");
    remove.name = Some(lake.tables()[0].name.clone());
    assert!(send(addr, &remove).is_ok());
    assert_matches_rebuild("after remove_table");

    // And remove the table we just added, round-tripping the delta insert.
    let mut remove2 = Request::op("remove_table");
    remove2.name = Some("delta_linked".into());
    assert!(send(addr, &remove2).is_ok());
    assert_matches_rebuild("after removing the delta-added table");

    // Searches over the delta-maintained index answer normally.
    let resp = send(addr, &Request::search(&specs[0]));
    assert!(resp.is_ok(), "search after deltas failed: {resp:?}");
    assert_eq!(resp.epoch, Some(server.epoch()));
    running.shutdown();
}

#[test]
fn shutdown_request_stops_the_accept_loop() {
    let (running, _) = start(ServerConfig::default());
    let addr = running.addr();
    assert!(send(addr, &Request::op("ping")).is_ok());
    assert!(send(addr, &Request::op("shutdown")).is_ok());
    // join() returns because the accept loop observed the flag.
    running.join();
}
