//! End-to-end tests of the server's observability plane: rolling-window
//! metrics with exemplars, the `metrics`/`health` protocol ops, and the
//! tail-sampling slow-query log.
//!
//! Time is a manual [`WindowClock`] throughout — window decay is driven by
//! advancing the clock, never by sleeping — and the fault plan is
//! process-global, so every test serializes on [`SERIAL`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;

use thetis_corpus::{Benchmark, BenchmarkConfig, BenchmarkKind};
use thetis_datalake::{DataLake, EntityLinker, ExactLabelLinker};
use thetis_kg::KnowledgeGraph;
use thetis_obs::faults::{self, FaultPlan};
use thetis_obs::rolling::WindowClock;
use thetis_serve::{serve, Request, Response, RunningServer, Server, ServerConfig};

/// Serializes every test in this binary: the fault plan is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the fault plan when dropped, so a failing assertion cannot leak
/// an armed plan into the next test.
struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::disarm();
    }
}

/// The demo world, exactly as `thetis-cli --demo` constructs it.
fn demo_world() -> (KnowledgeGraph, DataLake, Vec<String>) {
    let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
    let graph = bench.kg.graph;
    let mut lake = bench.lake;
    ExactLabelLinker::new(&graph).link_lake(&mut lake);
    let specs = bench
        .queries1
        .iter()
        .chain(bench.queries5.iter())
        .map(|q| {
            q.tuples
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&e| graph.label(e).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect();
    (graph, lake, specs)
}

fn start(config: ServerConfig) -> (RunningServer, Vec<String>) {
    let (graph, lake, specs) = demo_world();
    let server = Server::new(graph, lake, None, config);
    (serve(server).unwrap(), specs)
}

/// One request over its own connection, like an independent client.
fn send(addr: std::net::SocketAddr, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    serde_json::from_str(&reply).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("thetis-obs-e2e-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The acceptance scenario of the observability plane, end to end: under
/// load with one injected-fault request and one pre-expired deadline, the
/// slow-query log holds exactly those two requests' full traces, the
/// `metrics` op's windowed p99 decays after the (manual) clock passes the
/// window, and the top latency exemplar resolves to a renderable retained
/// trace.
#[test]
fn slowlog_captures_exactly_the_troubled_requests() {
    let _g = serial();
    let clock = WindowClock::manual();
    let slowlog = temp_path("acceptance");
    let (running, specs) = start(ServerConfig {
        clock: clock.clone(),
        slowlog: Some(slowlog.clone()),
        max_inflight: 64,
        threads: 1,
        ..ServerConfig::default()
    });
    let addr = running.addr();

    // Baseline load: healthy requests, too few for the latency promotion
    // rung (min_window_count) to arm — nothing here may reach the slowlog.
    let mut healthy_ids = Vec::new();
    for spec in specs.iter().take(8) {
        let resp = send(addr, &Request::search(spec));
        assert!(resp.is_ok(), "healthy search failed: {resp:?}");
        assert_eq!(resp.degraded, Some(false));
        healthy_ids.push(resp.query_id.expect("search responses carry a query id"));
    }

    // One request degraded by an injected fault: every σ computation
    // panics, the engine isolates the panics and returns a partial
    // ranking, and the fault-hit delta promotes the trace.
    let fault_qid = {
        let _guard = FaultGuard;
        faults::arm(FaultPlan::parse("sigma=panic@1", 7).unwrap());
        let resp = send(addr, &Request::search(&specs[0]));
        assert!(resp.is_ok(), "fault-degraded search failed: {resp:?}");
        assert_eq!(resp.degraded, Some(true), "worker panics must degrade");
        resp.query_id.unwrap()
    };

    // One request degraded by a pre-expired deadline.
    let deadline_qid = {
        let mut req = Request::search(&specs[1]);
        req.deadline_ms = Some(0);
        let resp = send(addr, &req);
        assert!(resp.is_ok(), "deadline search failed: {resp:?}");
        assert_eq!(resp.degraded, Some(true));
        resp.query_id.unwrap()
    };

    // The slow-query log holds exactly the two troubled requests, each
    // with its full trace and the rung that promoted it.
    let log = thetis_obs::read_slowlog(&slowlog).unwrap();
    assert_eq!(log.torn_skipped, 0, "a clean shutdown never tears the log");
    let promoted = log.traces;
    let mut got: Vec<u64> = promoted.iter().map(|t| t.query_id).collect();
    got.sort_unstable();
    let mut want = vec![fault_qid, deadline_qid];
    want.sort_unstable();
    assert_eq!(got, want, "slowlog must hold exactly the troubled requests");
    for trace in &promoted {
        assert_eq!(trace.op, "search");
        assert!(
            !trace.events.is_empty(),
            "promoted traces carry their events: {trace:?}"
        );
        let by = trace.promoted_by.as_deref();
        if trace.query_id == fault_qid {
            assert_eq!(by, Some("fault"), "wrong rung: {trace:?}");
        } else {
            assert_eq!(by, Some("degraded"), "wrong rung: {trace:?}");
            assert!(trace.reasons.iter().any(|r| r == "deadline"));
        }
    }

    // The metrics op sees the whole window: every request, both degraded
    // ones, and a live p99.
    let snap = send(addr, &Request::op("metrics")).metrics.unwrap();
    assert_eq!(snap.window_requests, 10);
    assert_eq!(snap.window_degraded, 2);
    assert_eq!(snap.total_requests, 10);
    assert_eq!(snap.traces_retained, 10);
    assert_eq!(snap.traces_promoted, 2);
    assert!(snap.p99_us.is_some(), "p99 must be live under load");
    assert!(snap.qps > 0.0);

    // The top occupied latency bucket carries an exemplar, and its query
    // id resolves to a retained trace the CLI can render.
    let exemplar = snap
        .buckets
        .iter()
        .rev()
        .find_map(|b| b.exemplar.as_ref())
        .expect("some bucket must carry an exemplar");
    let retained = running
        .server()
        .metrics()
        .retainer()
        .find(exemplar.query_id)
        .expect("the exemplar's query id must resolve to a retained trace");
    let rendered = retained.render();
    assert!(
        rendered.contains(&format!("{:#018x}", exemplar.query_id)),
        "rendered trace must name its query id:\n{rendered}"
    );

    // Advance the manual clock past the whole window: the windowed view
    // decays to empty (p99 gone, zero rate) while cumulative totals stay.
    clock.advance(std::time::Duration::from_secs(130));
    let snap = send(addr, &Request::op("metrics")).metrics.unwrap();
    assert_eq!(snap.window_requests, 0, "window must decay: {snap:?}");
    assert_eq!(snap.p99_us, None, "p99 must decay with the window");
    assert_eq!(snap.qps, 0.0);
    assert_eq!(snap.total_requests, 10, "cumulative totals never decay");
    assert_eq!(snap.traces_retained, 10);

    let stats = send(addr, &Request::op("stats")).stats.unwrap();
    assert_eq!(stats.degraded, 2);
    assert_eq!(stats.traces_promoted, 2);

    running.shutdown();
    let _ = std::fs::remove_file(&slowlog);
}

/// The `health` op's rungs: ready → degraded (a degraded response in the
/// window) → ready again once the window decays past it.
#[test]
fn health_rungs_follow_the_window() {
    let _g = serial();
    let clock = WindowClock::manual();
    let (running, specs) = start(ServerConfig {
        clock: clock.clone(),
        // Exercise the trouble-log path too (rate-limited stderr line).
        trouble_log: true,
        ..ServerConfig::default()
    });
    let addr = running.addr();

    let health = send(addr, &Request::op("health")).health.unwrap();
    assert_eq!(health.status, "ready", "fresh server: {health:?}");
    assert!(health.reasons.is_empty());

    let mut req = Request::search(&specs[0]);
    req.deadline_ms = Some(0);
    assert_eq!(send(addr, &req).degraded, Some(true));
    let health = send(addr, &Request::op("health")).health.unwrap();
    assert_eq!(health.status, "degraded", "{health:?}");
    assert!(!health.reasons.is_empty());

    clock.advance(std::time::Duration::from_secs(130));
    let health = send(addr, &Request::op("health")).health.unwrap();
    assert_eq!(
        health.status, "ready",
        "window decay must clear: {health:?}"
    );
    running.shutdown();
}

/// A server that sheds (zero admission slots) reports `overloaded` until
/// the shed falls out of the window.
#[test]
fn shedding_turns_health_overloaded() {
    let _g = serial();
    let clock = WindowClock::manual();
    let (running, specs) = start(ServerConfig {
        clock: clock.clone(),
        max_inflight: 0,
        ..ServerConfig::default()
    });
    let addr = running.addr();

    let resp = send(addr, &Request::search(&specs[0]));
    assert_eq!(resp.status, "overloaded");
    let health = send(addr, &Request::op("health")).health.unwrap();
    assert_eq!(health.status, "overloaded", "{health:?}");
    let snap = send(addr, &Request::op("metrics")).metrics.unwrap();
    assert_eq!(snap.window_shed, 1);
    assert_eq!(snap.total_shed, 1);

    clock.advance(std::time::Duration::from_secs(130));
    let snap = send(addr, &Request::op("metrics")).metrics.unwrap();
    assert_eq!(snap.window_shed, 0, "shed decays with the window");
    assert_eq!(snap.total_shed, 1);
    running.shutdown();
}

/// The periodic metrics writer leaves a readable JSON snapshot and a
/// lint-clean Prometheus text file behind, including the final write at
/// shutdown.
#[test]
fn metrics_writer_emits_snapshot_and_prometheus_text() {
    let _g = serial();
    let out =
        std::env::temp_dir().join(format!("thetis-obs-e2e-{}-writer.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let prom = out.with_extension("prom");
    let _ = std::fs::remove_file(&prom);

    let (running, specs) = start(ServerConfig {
        metrics_out: Some(out.clone()),
        metrics_interval: std::time::Duration::from_millis(100),
        ..ServerConfig::default()
    });
    let addr = running.addr();
    assert!(send(addr, &Request::search(&specs[0])).is_ok());
    running.shutdown(); // joins the writer; the final write has happened

    let json = std::fs::read_to_string(&out).unwrap();
    let snap: thetis_serve::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap.total_requests, 1, "{snap:?}");

    let text = std::fs::read_to_string(&prom).unwrap();
    let errors = thetis_obs::lint_prometheus_text(&text);
    assert!(errors.is_empty(), "prometheus lint: {errors:?}\n{text}");

    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&prom);
}
