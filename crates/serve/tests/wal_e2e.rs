//! Chaos tests of the durability layer, end to end over real TCP: crash
//! recovery from a copied-at-"crash-time" journal, torn-tail truncation,
//! injected `wal.*` faults failing mutations closed, checkpoint-failure
//! health rungs, and the graceful-drain shutdown checkpoint.
//!
//! The crash simulation copies the journal and checkpoint files while the
//! victim server is still running: every acknowledged mutation is fsync'd
//! before its response is sent, so the copies are exactly the bytes a
//! `kill -9` at that instant would leave behind. The fault plan is
//! process-global, so every test serializes on [`SERIAL`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;

use thetis_corpus::{Benchmark, BenchmarkConfig, BenchmarkKind};
use thetis_datalake::{DataLake, EntityLinker, ExactLabelLinker};
use thetis_kg::KnowledgeGraph;
use thetis_obs::faults::{self, FaultPlan};
use thetis_serve::{serve, Request, Response, RunningServer, Server, ServerConfig};

/// Serializes every test in this binary: the fault plan is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the fault plan when dropped, so a failing assertion cannot leak
/// an armed plan into the next test.
struct FaultGuard;

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::disarm();
    }
}

/// The demo world, exactly as `thetis-cli --demo` constructs it. The base
/// lake epoch is deterministic across calls, so two worlds built here are
/// interchangeable recovery substrates.
fn demo_world() -> (KnowledgeGraph, DataLake, Vec<String>) {
    let bench = Benchmark::build(&BenchmarkConfig::tiny(BenchmarkKind::Wt2015));
    let graph = bench.kg.graph;
    let mut lake = bench.lake;
    ExactLabelLinker::new(&graph).link_lake(&mut lake);
    let specs = bench
        .queries1
        .iter()
        .chain(bench.queries5.iter())
        .map(|q| {
            q.tuples
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|&e| graph.label(e).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect();
    (graph, lake, specs)
}

fn start(config: ServerConfig) -> (RunningServer, Vec<String>) {
    let (graph, lake, specs) = demo_world();
    let server = Server::new(graph, lake, None, config);
    (serve(server).unwrap(), specs)
}

/// One request over its own connection, like an independent client.
fn send(addr: std::net::SocketAddr, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut line = serde_json::to_string(req).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    serde_json::from_str(&reply).unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("thetis-wal-e2e-{}-{tag}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("ckpt"));
    path
}

/// Adds a tiny inline-CSV table through the mutation path.
fn add_table(addr: std::net::SocketAddr, name: &str) -> Response {
    let mut add = Request::op("add_table");
    add.name = Some(name.into());
    add.csv = Some(format!("col_a,col_b\n{name}_alpha,{name}_beta\n"));
    send(addr, &add)
}

/// Ranked `(table, score_bits)` pairs for each spec — the bit-identity
/// currency of every recovery assertion.
fn rankings(addr: std::net::SocketAddr, specs: &[String]) -> Vec<Vec<(u64, u64)>> {
    specs
        .iter()
        .map(|spec| {
            let resp = send(addr, &Request::search(spec));
            assert!(resp.is_ok(), "search failed: {resp:?}");
            resp.ranked
                .as_deref()
                .unwrap()
                .iter()
                .map(|h| (h.table, h.score_bits))
                .collect()
        })
        .collect()
}

/// Copies the journal and its checkpoint sibling to a new path pair,
/// simulating the on-disk state a `kill -9` would leave behind.
fn snapshot_disk_state(wal: &PathBuf, tag: &str) -> PathBuf {
    let copy = temp_path(tag);
    std::fs::copy(wal, &copy).unwrap();
    let ckpt = wal.with_extension("ckpt");
    if ckpt.exists() {
        std::fs::copy(&ckpt, copy.with_extension("ckpt")).unwrap();
    }
    copy
}

/// Boots a recovered server from the given journal path.
fn recover(wal: PathBuf, config: ServerConfig) -> (RunningServer, thetis_serve::RecoveryReport) {
    let (graph, lake, _) = demo_world();
    let (server, report) = Server::recover(
        graph,
        lake,
        None,
        ServerConfig {
            wal: Some(wal),
            ..config
        },
    )
    .expect("recovery must not fail");
    (serve(server).unwrap(), report)
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
        let _ = std::fs::remove_file(p.with_extension("ckpt"));
    }
}

/// The acceptance scenario: a journaled server takes mutations past a
/// checkpoint boundary, "crashes" (its disk state is copied mid-flight),
/// and the recovered server reports the exact epoch and answers every
/// query bit-identically to the never-crashed original.
#[test]
fn recovered_server_matches_the_never_crashed_original_bit_for_bit() {
    let _g = serial();
    faults::disarm();
    let wal = temp_path("crash-live");
    let (running, specs) = start(ServerConfig {
        wal: Some(wal.clone()),
        checkpoint_every: 3,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let report = running.server().recovery().clone();
    assert!(report.wal_enabled);
    assert_eq!(report.replayed, 0, "a fresh journal replays nothing");

    // Five mutations: the third triggers a checkpoint + rotation, so the
    // journal holds exactly the last two records at "crash time".
    let epoch0 = running.server().epoch();
    for i in 0..5 {
        let resp = add_table(addr, &format!("crash_t{i}"));
        assert!(resp.is_ok(), "add_table failed: {resp:?}");
        assert_eq!(resp.epoch, Some(epoch0 + i + 1));
    }
    let probe: Vec<String> = specs.iter().take(4).cloned().collect();
    let want = rankings(addr, &probe);

    // kill -9: the copies are the fsync'd on-disk state, mid-journal.
    let crashed = snapshot_disk_state(&wal, "crash-copy");

    let (revived, report) = recover(crashed.clone(), ServerConfig::default());
    assert_eq!(report.recovered_epoch, epoch0 + 5, "{report:?}");
    assert_eq!(report.checkpoint_epoch, Some(epoch0 + 3), "{report:?}");
    assert_eq!(report.replayed, 2, "two records past the checkpoint");
    assert!(!report.torn, "a clean copy has no torn tail: {report:?}");
    assert_eq!(revived.server().epoch(), epoch0 + 5);

    let got = rankings(revived.addr(), &probe);
    assert_eq!(got, want, "recovered rankings must be bit-identical");

    let stats = send(revived.addr(), &Request::op("stats")).stats.unwrap();
    assert!(stats.wal_enabled);
    assert_eq!(stats.wal_replayed, 2, "{stats:?}");

    revived.shutdown();
    running.shutdown();
    cleanup(&[&wal, &crashed]);
}

/// A corrupt byte mid-journal truncates recovery at the crash-consistent
/// prefix: the recovered server comes up at the last intact epoch and
/// still serves, rather than panicking or publishing half a batch.
#[test]
fn corrupt_journal_tail_truncates_to_the_intact_prefix() {
    let _g = serial();
    faults::disarm();
    let wal = temp_path("torn-live");
    let (running, specs) = start(ServerConfig {
        wal: Some(wal.clone()),
        // Never checkpoint: every record stays in the journal.
        checkpoint_every: 0,
        checkpoint_interval: std::time::Duration::ZERO,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let epoch0 = running.server().epoch();
    for i in 0..3 {
        assert!(add_table(addr, &format!("torn_t{i}")).is_ok());
    }

    let crashed = snapshot_disk_state(&wal, "torn-copy");
    // Flip one bit in the final record's checksum trailer: the prefix
    // stays intact, the last record dies.
    let mut bytes = std::fs::read(&crashed).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&crashed, &bytes).unwrap();

    let (revived, report) = recover(crashed.clone(), ServerConfig::default());
    assert!(report.torn, "corruption must be reported: {report:?}");
    assert!(report.dropped_bytes > 0);
    assert_eq!(
        report.recovered_epoch,
        epoch0 + 2,
        "recovery stops at the intact prefix: {report:?}"
    );
    // The truncated server still serves searches.
    let probe: Vec<String> = specs.iter().take(2).cloned().collect();
    rankings(revived.addr(), &probe);

    revived.shutdown();
    running.shutdown();
    cleanup(&[&wal, &crashed]);
}

/// An injected `wal.append` fault fails the mutation closed — error
/// response, epoch unchanged, nothing journaled — and the server keeps
/// serving; once the fault clears, mutations flow again.
#[test]
fn append_fault_fails_the_mutation_closed() {
    let _g = serial();
    faults::disarm();
    let wal = temp_path("append-fault");
    let (running, specs) = start(ServerConfig {
        wal: Some(wal.clone()),
        checkpoint_every: 0,
        checkpoint_interval: std::time::Duration::ZERO,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let epoch0 = running.server().epoch();

    for action in ["error", "panic"] {
        let _guard = FaultGuard;
        faults::arm(FaultPlan::parse(&format!("wal.append={action}@1"), 7).unwrap());
        let resp = add_table(addr, &format!("doomed_{action}"));
        assert_eq!(resp.status, "error", "append {action} must fail closed");
        assert!(
            resp.error.as_deref().unwrap().contains("not journaled"),
            "{resp:?}"
        );
        assert_eq!(running.server().epoch(), epoch0, "lake must be unchanged");
    }
    faults::disarm();

    // Still healthy, still serving, and mutations work again.
    let probe: Vec<String> = specs.iter().take(1).cloned().collect();
    rankings(addr, &probe);
    let resp = add_table(addr, "survivor");
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.epoch, Some(epoch0 + 1));
    // The doomed mutations journaled nothing: recovery sees one record.
    let crashed = snapshot_disk_state(&wal, "append-fault-copy");
    let (revived, report) = recover(crashed.clone(), ServerConfig::default());
    assert_eq!(report.replayed, 1, "{report:?}");
    assert!(!report.torn, "{report:?}");

    revived.shutdown();
    running.shutdown();
    cleanup(&[&wal, &crashed]);
}

/// A failing checkpoint turns health `degraded` (with the failure named in
/// the reasons) while the previous checkpoint and the journal survive;
/// the next successful checkpoint clears the rung.
#[test]
fn checkpoint_failure_degrades_health_until_one_succeeds() {
    let _g = serial();
    faults::disarm();
    let wal = temp_path("ckpt-fault");
    let (running, _specs) = start(ServerConfig {
        wal: Some(wal.clone()),
        checkpoint_every: 1, // checkpoint after every mutation
        ..ServerConfig::default()
    });
    let addr = running.addr();

    {
        let _guard = FaultGuard;
        faults::arm(FaultPlan::parse("wal.checkpoint=error@1", 7).unwrap());
        // The mutation itself succeeds — write-ahead happened — only the
        // checkpoint after it fails.
        let resp = add_table(addr, "ckpt_victim");
        assert!(resp.is_ok(), "mutation must outlive checkpoint failure");
        let health = send(addr, &Request::op("health")).health.unwrap();
        assert_eq!(health.status, "degraded", "{health:?}");
        assert!(
            health.reasons.iter().any(|r| r.contains("checkpoint")),
            "{health:?}"
        );
        let stats = send(addr, &Request::op("stats")).stats.unwrap();
        assert_eq!(stats.checkpoint_failures, 1, "{stats:?}");
    }
    faults::disarm();

    // The next mutation checkpoints cleanly and the rung clears.
    assert!(add_table(addr, "ckpt_healer").is_ok());
    let stats = send(addr, &Request::op("stats")).stats.unwrap();
    assert_eq!(stats.checkpoint_failures, 0, "success resets: {stats:?}");
    assert_eq!(stats.mutations_since_checkpoint, 0, "{stats:?}");
    let health = send(addr, &Request::op("health")).health.unwrap();
    assert_ne!(health.status, "degraded", "rung must clear: {health:?}");
    assert!(wal.with_extension("ckpt").exists());

    running.shutdown();
    cleanup(&[&wal]);
}

/// Graceful shutdown drains into a final checkpoint: afterwards the
/// checkpoint sibling exists, the journal is rotated down to its header,
/// and a restart replays zero records yet lands on the exact epoch.
#[test]
fn shutdown_drains_into_a_final_checkpoint() {
    let _g = serial();
    faults::disarm();
    let wal = temp_path("drain");
    let (running, _specs) = start(ServerConfig {
        wal: Some(wal.clone()),
        checkpoint_every: 0, // only the shutdown drain may checkpoint
        checkpoint_interval: std::time::Duration::ZERO,
        ..ServerConfig::default()
    });
    let addr = running.addr();
    let epoch0 = running.server().epoch();
    for i in 0..4 {
        assert!(add_table(addr, &format!("drain_t{i}")).is_ok());
    }
    assert!(
        !wal.with_extension("ckpt").exists(),
        "no checkpoint may exist before the drain"
    );
    running.shutdown();

    assert!(
        wal.with_extension("ckpt").exists(),
        "drain must write the final checkpoint"
    );
    let journal_len = std::fs::metadata(&wal).unwrap().len();
    assert_eq!(
        journal_len, 4,
        "drain must rotate the journal to its header"
    );
    assert_eq!(
        thetis_datalake::checkpoint_epoch(&wal.with_extension("ckpt")).unwrap(),
        epoch0 + 4,
    );

    let (revived, report) = recover(wal.clone(), ServerConfig::default());
    assert_eq!(report.replayed, 0, "a drained journal is empty: {report:?}");
    assert_eq!(report.recovered_epoch, epoch0 + 4);
    revived.shutdown();
    cleanup(&[&wal]);
}
