//! Thetis resident query service.
//!
//! `thetis-serve` keeps one semantic data lake — knowledge graph, linked
//! tables, informativeness weights, and the LSEI prefilter — loaded in
//! memory and answers concurrent search queries over a TCP socket speaking
//! line-delimited JSON ([`protocol`]). Compared to one-shot `thetis-cli`
//! invocations it amortizes the expensive parts (lake load, index build)
//! across every query and adds two things a resident process can offer:
//!
//! - **Admission control** ([`ServerConfig::max_inflight`]): a saturated
//!   server sheds excess searches immediately with an `overloaded`
//!   response instead of queueing them into a latency cliff.
//! - **A cross-query σ memo** ([`SharedSimilarityCache`]
//!   (thetis_core::SharedSimilarityCache)): entity-pair similarities
//!   computed by one query are served to the next, bounded in memory and
//!   evicted whenever the lake epoch advances.
//!
//! Results are **bit-identical** to one-shot CLI runs over the same lake:
//! the server builds its LSEI with the exact CLI construction and the
//! shared memo only stores exact σ values, so memoization never changes a
//! score.
//!
//! ```no_run
//! use thetis_serve::{serve, Request, Server, ServerConfig};
//! # fn demo(graph: thetis_kg::KnowledgeGraph, lake: thetis_datalake::DataLake) {
//! let server = Server::new(graph, lake, None, ServerConfig::default());
//! let running = serve(server).unwrap();
//! eprintln!("serving on {}", running.addr());
//! running.join(); // until a {"op":"shutdown"} request arrives
//! # }
//! ```

pub mod metrics;
pub mod protocol;
pub mod server;

pub use metrics::ServeMetrics;
pub use protocol::{HealthStatus, Hit, MetricsSnapshot, Request, Response, ServerStats};
pub use server::{
    parse_query_spec, serve, RecoveryReport, RunningServer, Server, ServerConfig, SimKind,
};
