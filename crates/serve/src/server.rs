//! The resident server: one loaded lake, many concurrent queries.
//!
//! [`Server`] owns everything a query needs — the knowledge graph, the
//! [`EpochLake`] snapshot store, per-epoch derived state (informativeness
//! weights and the LSEI), the similarity, and the shared cross-query σ memo
//! — and [`serve`] exposes it over a TCP socket speaking the line-delimited
//! JSON protocol of [`protocol`](crate::protocol).
//!
//! ## Concurrency model
//!
//! One thread per connection; each search runs on the caller's connection
//! thread using the engine's existing work-stealing scorer. Admission
//! control is a single atomic in-flight counter: a search that would push
//! it past [`ServerConfig::max_inflight`] is shed immediately with an
//! `overloaded` response instead of queueing — the client owns the retry
//! policy, the server owns bounded latency.
//!
//! ## Epochs
//!
//! Every search pins the current [`EpochState`] (lake snapshot +
//! informativeness + LSEI, all derived from the same epoch) before doing
//! any work, so mutations committed mid-flight never tear a query.
//! Mutations commit through the [`EpochLake`] writer path; the LSEI is
//! delta-maintained from the previous epoch's index (one
//! `insert_table`/`remove_table` per mutation, never a rebuild) while the
//! informativeness weights are recomputed from the new snapshot. The
//! shared σ memo notices the epoch advance on the next search and evicts
//! itself (see [`SharedSimilarityCache`](thetis_core::SharedSimilarityCache)).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use thetis_obs::rolling::WindowClock;
use thetis_obs::{PromotionPolicy, QueryTrace};

use thetis_core::{
    EmbeddingCosine, EntitySimilarity, Informativeness, PredicateJaccard, Query, SearchOptions,
    SharedSimilarityCache, SigmaKernel, ThetisEngine, TypeJaccard,
};
use thetis_datalake::wal::{Wal, WalRecord};
use thetis_datalake::{DataLake, EntityLinker, EpochLake, ExactLabelLinker, Mutation, TableId};
use thetis_embedding::EmbeddingStore;
use thetis_kg::KnowledgeGraph;
use thetis_lsh::lsei::{Lsei, LseiMode, TypeSigner};
use thetis_lsh::{LshConfig, TypeFilter};

use crate::metrics::ServeMetrics;
use crate::protocol::{HealthStatus, Hit, MetricsSnapshot, Request, Response, ServerStats};

/// Search requests admitted (shed ones excluded).
static OBS_REQUESTS: thetis_obs::Counter = thetis_obs::Counter::new("serve.requests");
/// Search requests shed with `overloaded`.
static OBS_SHED: thetis_obs::Counter = thetis_obs::Counter::new("serve.shed");
/// Requests answered with an error status.
static OBS_ERRORS: thetis_obs::Counter = thetis_obs::Counter::new("serve.errors");
/// Mutations committed through the serve path.
static OBS_MUTATIONS: thetis_obs::Counter = thetis_obs::Counter::new("serve.mutations");
/// Server-side request latency, admission to response.
static OBS_LATENCY: thetis_obs::Histogram = thetis_obs::Histogram::new("serve.request_latency");

/// Which entity similarity the server answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    /// Adjusted type Jaccard (no training needed).
    Types,
    /// Predicate-set Jaccard.
    Predicates,
    /// Embedding cosine — requires an [`EmbeddingStore`] at construction.
    Embeddings,
}

/// Construction-time knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Searches allowed in flight at once; one more is shed, not queued.
    pub max_inflight: usize,
    /// Entry budget of the shared σ memo (0 = unbounded).
    pub cache_capacity: usize,
    /// Lock shards of the shared σ memo.
    pub cache_shards: usize,
    /// Default LSEI voting threshold (requests may override).
    pub votes: usize,
    /// Build and use the LSEI prefilter (recommended; without it every
    /// search scans the whole lake).
    pub use_lsei: bool,
    /// Default `k` when a request does not name one.
    pub k: usize,
    /// Scoring worker threads per request (0 = all cores). A server
    /// expecting many concurrent clients usually wants 1: concurrency
    /// across requests, not within one.
    pub threads: usize,
    /// Entity similarity to answer with.
    pub sim: SimKind,
    /// Default σ kernel for requests that do not name one (requests can
    /// still override per search via the wire op's `"kernel"` field).
    /// The matching quantized slab is warmed at boot so the first
    /// request never pays the one-time build.
    pub kernel: SigmaKernel,
    /// Honor the `debug_hold_ms` test hook (off for real deployments).
    pub allow_debug: bool,
    /// Time source of every rolling window and rate limiter: monotonic in
    /// production, manual in tests (advance it to decay windows without
    /// sleeping).
    pub clock: WindowClock,
    /// Slots of the rolling window.
    pub window_slots: usize,
    /// Width of one rolling-window slot.
    pub slot_duration: Duration,
    /// Append promoted slow-query traces to this JSONL file.
    pub slowlog: Option<PathBuf>,
    /// Traces kept in the in-memory reservoir.
    pub trace_capacity: usize,
    /// When a finished request's trace escalates to the slow-query log.
    pub promotion: PromotionPolicy,
    /// Write a JSON metrics snapshot (plus a Prometheus text rendering of
    /// the global registry, same stem with a `.prom` extension) to this
    /// path periodically and at shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Interval between metrics-snapshot writes.
    pub metrics_interval: Duration,
    /// Emit rate-limited structured stderr lines on shed/degraded
    /// requests (the CLI turns this on; tests that shed on purpose leave
    /// it off).
    pub trouble_log: bool,
    /// Journal every mutation to this write-ahead log, fsync'd before the
    /// commit publishes, and recover `checkpoint + replay` at boot. The
    /// checkpoint lives next to the journal (same stem, `.ckpt`
    /// extension). `None` = in-memory only (mutations die with the
    /// process).
    pub wal: Option<PathBuf>,
    /// Checkpoint after this many journaled mutations (0 = only on the
    /// time interval and at shutdown).
    pub checkpoint_every: u64,
    /// Also checkpoint when the last one is older than this, measured on
    /// the injected clock and checked on the mutation path
    /// (`Duration::ZERO` disables the time trigger).
    pub checkpoint_interval: Duration,
    /// How long a graceful drain waits for in-flight searches before the
    /// final checkpoint.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_inflight: std::thread::available_parallelism().map_or(4, |n| n.get() * 2),
            cache_capacity: 1 << 20,
            cache_shards: thetis_core::SimilarityCache::DEFAULT_SHARDS,
            votes: 1,
            use_lsei: true,
            k: 10,
            threads: 1,
            sim: SimKind::Types,
            kernel: SigmaKernel::default(),
            allow_debug: false,
            clock: WindowClock::monotonic(),
            window_slots: thetis_obs::DEFAULT_WINDOW_SLOTS,
            slot_duration: thetis_obs::DEFAULT_SLOT_DURATION,
            slowlog: None,
            trace_capacity: 256,
            promotion: PromotionPolicy::default(),
            metrics_out: None,
            metrics_interval: Duration::from_secs(5),
            trouble_log: false,
            wal: None,
            checkpoint_every: 64,
            checkpoint_interval: Duration::from_secs(300),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// What boot-time crash recovery found and did. All zeroes/`None` when
/// the server starts without a WAL, or with a fresh one.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a WAL is configured at all.
    pub wal_enabled: bool,
    /// Epoch of the checkpoint the recovery started from (`None`: no
    /// checkpoint yet — the freshly loaded lake was the base).
    pub checkpoint_epoch: Option<u64>,
    /// Journal records replayed onto the base.
    pub replayed: u64,
    /// Journal records skipped because the checkpoint already contained
    /// them (a crash between checkpoint rename and journal rotation).
    pub skipped: u64,
    /// Whether a torn/corrupt journal tail was truncated.
    pub torn: bool,
    /// Bytes that truncation dropped.
    pub dropped_bytes: u64,
    /// The epoch the server recovered to (== the published boot epoch).
    pub recovered_epoch: u64,
}

/// The durable side of the server: the open journal and where its
/// checkpoint lives. One mutex guards both — appends are already
/// serialized by the mutate lock, but `stats` reads the journal length
/// from other threads.
struct Durability {
    wal: Wal,
    checkpoint: PathBuf,
}

/// Everything derived from one lake epoch, swapped atomically as a unit so
/// a pinned request reads a coherent view.
struct EpochState {
    lake: Arc<DataLake>,
    inform: Informativeness,
    lsei: Option<Lsei<TypeSigner<'static>>>,
}

/// The resident query service. Shared across connection threads as an
/// `Arc`; all methods take `&self`.
pub struct Server {
    graph: &'static KnowledgeGraph,
    sim: Box<dyn EntitySimilarity + Send + Sync + 'static>,
    config: ServerConfig,
    epochs: EpochLake,
    state: RwLock<Arc<EpochState>>,
    /// Serializes mutation commits *and* the derived-state rebuild that
    /// follows, so two racing mutations cannot publish states out of
    /// epoch order.
    mutate: Mutex<()>,
    cache: SharedSimilarityCache,
    metrics: ServeMetrics,
    inflight: AtomicUsize,
    requests: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
    /// Clock reading of the last trouble line, for the 1/s rate limit.
    last_trouble_ns: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    /// Durable journal + checkpoint path; `None` without `--wal`.
    durability: Option<Mutex<Durability>>,
    /// What boot-time recovery found (all-default without a WAL).
    recovery: RecoveryReport,
    /// Set by [`Server::drain`]: stop admitting searches and mutations.
    draining: AtomicBool,
    /// Mutation records durably appended since boot.
    wal_appends: AtomicU64,
    /// Checkpoints durably written since boot.
    checkpoints: AtomicU64,
    /// Consecutive checkpoint failures since the last success.
    checkpoint_failures: AtomicU64,
    /// Mutations journaled since the last durable checkpoint.
    mutations_since_checkpoint: AtomicU64,
    /// Epoch of the last durable checkpoint (boot epoch until one lands).
    checkpoint_epoch: AtomicU64,
    /// Injected-clock reading at the last durable checkpoint (or boot).
    checkpoint_ns: AtomicU64,
}

/// Decrements the in-flight counter even when a search panics.
struct InflightGuard<'a>(&'a Server);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Server {
    /// Builds a server over a linked lake.
    ///
    /// The graph (and embedding store, when `sim` is
    /// [`SimKind::Embeddings`]) are intentionally leaked to `'static`:
    /// they live for the whole process anyway — this is a resident service
    /// — and `'static` borrows are what lets the LSEI signer and the
    /// similarity live inside the server without self-referential
    /// lifetimes. `store` must be `Some` for the embeddings similarity.
    pub fn new(
        graph: KnowledgeGraph,
        lake: DataLake,
        store: Option<EmbeddingStore>,
        config: ServerConfig,
    ) -> Arc<Self> {
        Self::recover(graph, lake, store, config)
            .expect("server boot failed")
            .0
    }

    /// Builds a server with crash recovery: when [`ServerConfig::wal`] is
    /// set, the published boot state is `last checkpoint + journal
    /// replay` (with any torn tail truncated), not the passed-in `lake` —
    /// that is only the base for a journal that predates the first
    /// checkpoint, so it must be loaded the same way every boot.
    ///
    /// Fails (never panics) on unrecoverable durability damage: a corrupt
    /// checkpoint (the checkpoint writer is atomic and read-back
    /// verified, so damage means storage rot an operator must see) or a
    /// journal that does not belong to this base.
    pub fn recover(
        graph: KnowledgeGraph,
        mut lake: DataLake,
        store: Option<EmbeddingStore>,
        config: ServerConfig,
    ) -> Result<(Arc<Self>, RecoveryReport), String> {
        let mut report = RecoveryReport::default();
        let durability = match &config.wal {
            None => None,
            Some(path) => {
                report.wal_enabled = true;
                let checkpoint = path.with_extension("ckpt");
                if checkpoint.exists() {
                    let recovered = thetis_datalake::read_checkpoint(&checkpoint)?;
                    report.checkpoint_epoch = Some(recovered.epoch());
                    lake = recovered;
                }
                let (wal, replay) = Wal::recover(path)?;
                report.torn = replay.torn;
                report.dropped_bytes = replay.dropped_bytes;
                let outcome = thetis_datalake::apply_replay(&mut lake, &replay.records)?;
                report.replayed = outcome.applied;
                report.skipped = outcome.skipped;
                Some(Mutex::new(Durability { wal, checkpoint }))
            }
        };
        report.recovered_epoch = lake.epoch();
        let graph: &'static KnowledgeGraph = Box::leak(Box::new(graph));
        let store: Option<&'static EmbeddingStore> = store.map(|s| &*Box::leak(Box::new(s)));
        let sim: Box<dyn EntitySimilarity + Send + Sync + 'static> = match config.sim {
            SimKind::Types => Box::new(TypeJaccard::new(graph)),
            SimKind::Predicates => Box::new(PredicateJaccard::new(graph)),
            SimKind::Embeddings => {
                let cos = EmbeddingCosine::new(
                    store.expect("SimKind::Embeddings needs an embedding store"),
                );
                cos.warm(config.kernel);
                Box::new(cos)
            }
        };
        let epochs = EpochLake::new(lake);
        let epoch = epochs.epoch();
        let state = RwLock::new(Arc::new(Self::derive_state(graph, epochs.pin(), &config)));
        let metrics = ServeMetrics::new(
            config.clock.clone(),
            config.window_slots,
            config.slot_duration,
            config.trace_capacity,
            config.slowlog.as_deref(),
            config.promotion,
        )
        .expect("cannot open the slow-query log");
        let boot_ns = config.clock.now_ns();
        let server = Arc::new(Self {
            graph,
            sim,
            cache: SharedSimilarityCache::new(epoch, config.cache_shards, config.cache_capacity),
            config,
            epochs,
            state,
            mutate: Mutex::new(()),
            metrics,
            inflight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            last_trouble_ns: AtomicU64::new(u64::MAX),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            durability,
            recovery: report.clone(),
            draining: AtomicBool::new(false),
            wal_appends: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
            mutations_since_checkpoint: AtomicU64::new(0),
            checkpoint_epoch: AtomicU64::new(report.checkpoint_epoch.unwrap_or(epoch)),
            checkpoint_ns: AtomicU64::new(boot_ns),
        });
        Ok((server, report))
    }

    /// Builds the per-epoch derived state: informativeness weights and
    /// (when enabled) the LSEI, with exactly the `thetis-cli` index
    /// construction (recommended LSH config, 0.5 type filter, seed 42) so
    /// serve results are bit-identical to one-shot CLI runs.
    fn derive_state(
        graph: &'static KnowledgeGraph,
        lake: Arc<DataLake>,
        config: &ServerConfig,
    ) -> EpochState {
        let inform = Informativeness::from_lake(&lake);
        let lsei = config.use_lsei.then(|| {
            let cfg = LshConfig::recommended();
            let filter = TypeFilter::from_lake(&lake, graph, 0.5);
            Lsei::build(
                &lake,
                TypeSigner::new(graph, filter, cfg, 42),
                cfg,
                LseiMode::Entity,
            )
        });
        EpochState { lake, inform, lsei }
    }

    /// The (leaked) knowledge graph queries resolve against.
    pub fn graph(&self) -> &'static KnowledgeGraph {
        self.graph
    }

    /// The configuration this server was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The currently published lake epoch.
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// Runs `f` over the currently published (delta-maintained) LSEI —
    /// `None` when [`ServerConfig::use_lsei`] is off. The serve e2e suite
    /// uses this to assert the live index is equivalent to a from-scratch
    /// rebuild after mutation commits.
    pub fn with_lsei<R>(&self, f: impl FnOnce(Option<&Lsei<TypeSigner<'static>>>) -> R) -> R {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner()).clone();
        f(state.lsei.as_ref())
    }

    /// Builds the LSEI from scratch over the current snapshot — the
    /// rebuild-equivalence oracle the e2e suite compares [`Server::with_lsei`]
    /// against. Never used on the serving path.
    pub fn rebuild_lsei(&self) -> Option<Lsei<TypeSigner<'static>>> {
        Self::derive_state(self.graph, self.epochs.pin(), &self.config).lsei
    }

    /// Whether a `shutdown` request was received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests the accept loop to stop (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Current server counters.
    pub fn stats(&self) -> ServerStats {
        let cache = self.cache.cache();
        let cs = cache.stats();
        ServerStats {
            epoch: self.epochs.epoch(),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
            cache_entries: cache.len() as u64,
            cache_computed: cs.computed,
            cache_served: cs.served,
            cache_hit_rate: cs.hit_rate(),
            cache_evictions: cache.evictions(),
            cache_invalidations: self.cache.invalidations(),
            degraded: self.degraded.load(Ordering::Relaxed),
            traces_retained: self.metrics.retainer().recorded(),
            traces_promoted: self.metrics.retainer().promoted(),
            sigma_slab_bytes: self.sim.slab_bytes() as u64,
            wal_enabled: self.durability.is_some(),
            wal_records: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self
                .durability
                .as_ref()
                .map_or(0, |d| d.lock().unwrap_or_else(|e| e.into_inner()).wal.len()),
            wal_replayed: self.recovery.replayed,
            wal_torn_bytes: self.recovery.dropped_bytes,
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            checkpoint_epoch: self.checkpoint_epoch.load(Ordering::Relaxed),
            mutations_since_checkpoint: self.mutations_since_checkpoint.load(Ordering::Relaxed),
        }
    }

    /// What boot-time crash recovery found and did (all-default without
    /// a WAL).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The server's rolling-window metrics core (tests reach the trace
    /// reservoir and the injected clock through this).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The full windowed metrics snapshot (the `metrics` op's payload).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let cache = self.cache.cache();
        let mut snap = self.metrics.snapshot();
        snap.inflight = self.inflight.load(Ordering::Relaxed) as u64;
        snap.max_inflight = self.config.max_inflight as u64;
        snap.total_requests = self.requests.load(Ordering::Relaxed);
        snap.total_shed = self.shed.load(Ordering::Relaxed);
        snap.total_errors = self.errors.load(Ordering::Relaxed);
        snap.total_degraded = self.degraded.load(Ordering::Relaxed);
        snap.cache_hit_rate = cache.stats().hit_rate();
        snap.epoch = self.epochs.epoch();
        snap.uptime_s = self.started.elapsed().as_secs_f64();
        snap.wal_enabled = self.durability.is_some();
        snap.checkpoint_age_s = if self.durability.is_some() {
            self.config
                .clock
                .now_ns()
                .saturating_sub(self.checkpoint_ns.load(Ordering::Relaxed)) as f64
                / 1e9
        } else {
            0.0
        };
        snap.mutations_since_checkpoint = self.mutations_since_checkpoint.load(Ordering::Relaxed);
        snap.checkpoints = self.checkpoints.load(Ordering::Relaxed);
        snap.checkpoint_failures = self.checkpoint_failures.load(Ordering::Relaxed);
        snap
    }

    /// The `health` op's verdict: `overloaded` when admission control is
    /// saturated or shed requests fall inside the window, `degraded` when
    /// degraded responses do, `ready` otherwise — worst rung wins, with
    /// every firing rung named in `reasons`.
    pub fn health(&self) -> HealthStatus {
        let inflight = self.inflight.load(Ordering::Relaxed);
        let mut reasons = Vec::new();
        let mut status = "ready";
        // Stale-WAL rungs: a journal growing far past the checkpoint
        // policy, or a checkpoint path that is failing outright, means
        // recovery time is growing unboundedly — degraded, so operators
        // see it long before a crash makes it a recovery-time problem.
        if self.durability.is_some() {
            let failures = self.checkpoint_failures.load(Ordering::Relaxed);
            if failures > 0 {
                status = "degraded";
                reasons.push(format!(
                    "{failures} consecutive checkpoint failure(s); journal not rotated"
                ));
            }
            let since = self.mutations_since_checkpoint.load(Ordering::Relaxed);
            let every = self.config.checkpoint_every;
            if every > 0 && since >= every.saturating_mul(2) {
                status = "degraded";
                reasons.push(format!(
                    "checkpoint overdue: {since} journaled mutation(s) since the last one \
                     (policy: every {every})"
                ));
            }
        }
        let window_degraded = self.metrics.window_degraded();
        if window_degraded > 0 {
            status = "degraded";
            reasons.push(format!(
                "{window_degraded} degraded response(s) in the window"
            ));
        }
        let window_shed = self.metrics.window_shed();
        if window_shed > 0 {
            status = "overloaded";
            reasons.push(format!("{window_shed} shed request(s) in the window"));
        }
        if inflight >= self.config.max_inflight {
            status = "overloaded";
            reasons.push(format!(
                "admission control saturated ({inflight}/{})",
                self.config.max_inflight
            ));
        }
        HealthStatus {
            status: status.into(),
            reasons,
            inflight: inflight as u64,
            max_inflight: self.config.max_inflight as u64,
            qps: self.metrics.snapshot().qps,
            epoch: self.epochs.epoch(),
        }
    }

    /// Rate-limited (≥1 s apart, measured on the injected clock) structured
    /// stderr line for operators; a no-op unless
    /// [`ServerConfig::trouble_log`] is on.
    fn log_trouble(&self, line: impl FnOnce() -> String) {
        if !self.config.trouble_log {
            return;
        }
        let now = self.config.clock.now_ns();
        let last = self.last_trouble_ns.load(Ordering::Relaxed);
        if last != u64::MAX && now.saturating_sub(last) < 1_000_000_000 {
            return;
        }
        if self
            .last_trouble_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!("{}", line());
        }
    }

    /// Handles one request (transport-independent; the TCP layer and tests
    /// both come through here).
    pub fn handle(&self, req: &Request) -> Response {
        let resp = match req.operation() {
            "ping" => Response {
                status: "ok".into(),
                epoch: Some(self.epochs.epoch()),
                ..Response::default()
            },
            "stats" => Response {
                status: "ok".into(),
                epoch: Some(self.epochs.epoch()),
                stats: Some(self.stats()),
                ..Response::default()
            },
            "shutdown" => {
                self.request_shutdown();
                Response {
                    status: "ok".into(),
                    epoch: Some(self.epochs.epoch()),
                    ..Response::default()
                }
            }
            "metrics" => Response {
                status: "ok".into(),
                epoch: Some(self.epochs.epoch()),
                metrics: Some(self.metrics_snapshot()),
                ..Response::default()
            },
            "health" => Response {
                status: "ok".into(),
                epoch: Some(self.epochs.epoch()),
                health: Some(self.health()),
                ..Response::default()
            },
            "search" => self.handle_search(req),
            "add_table" => self.handle_add_table(req),
            "remove_table" => self.handle_remove_table(req),
            other => Response::error(format!("unknown op {other:?}")),
        };
        if resp.status == "error" {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.metrics.observe_error();
            if thetis_obs::enabled() {
                OBS_ERRORS.inc();
            }
        }
        resp
    }

    fn handle_search(&self, req: &Request) -> Response {
        // A draining server admits nothing new; in-flight searches finish.
        if self.draining.load(Ordering::Acquire) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.metrics.observe_shed();
            if thetis_obs::enabled() {
                OBS_SHED.inc();
            }
            let mut resp = Response::overloaded();
            resp.error = Some("server is draining; connection closing".into());
            return resp;
        }
        // Admission control: claim an in-flight slot or shed immediately.
        // fetch_add-then-check keeps the fast path one atomic; the guard
        // releases the slot on every exit path, panics included.
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= self.config.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.metrics.observe_shed();
            if thetis_obs::enabled() {
                OBS_SHED.inc();
            }
            self.log_trouble(|| {
                format!(
                    "thetis-serve trouble: event=shed op=search inflight={} max_inflight={}",
                    self.inflight.load(Ordering::Relaxed),
                    self.config.max_inflight
                )
            });
            return Response::overloaded();
        }
        let _slot = InflightGuard(self);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if thetis_obs::enabled() {
            OBS_REQUESTS.inc();
        }
        let started = Instant::now();

        let Some(spec) = req.query.as_deref() else {
            return Response::error("search needs a \"query\" field");
        };
        let (query, unknown) = parse_query_spec(spec, self.graph);
        if query.is_empty() {
            return Response::error(format!(
                "no query entity could be resolved against the KG (unknown: {unknown:?})"
            ));
        }
        if req.debug_hold_ms.is_some() && !self.config.allow_debug {
            return Response::error("debug_hold_ms is disabled on this server");
        }

        // Pin a coherent epoch view, then resolve the shared memo for it.
        let state = self.state.read().unwrap_or_else(|e| e.into_inner()).clone();
        let epoch = state.lake.epoch();
        let cache = self.cache.for_epoch(epoch);
        if let Some(ms) = req.debug_hold_ms.filter(|_| self.config.allow_debug) {
            // Test hook: park *after* pinning, while holding the slot, so
            // tests can overlap this request with mutations and saturation.
            std::thread::sleep(Duration::from_millis(ms));
        }

        let mut options = SearchOptions::top(req.k.map_or(self.config.k, |k| k as usize))
            .with_kernel(self.config.kernel);
        options.threads = self.config.threads;
        if let Some(ms) = req.deadline_ms {
            options = options.with_deadline(Duration::from_millis(ms));
        }
        if let Some(name) = req.kernel.as_deref() {
            let Some(kernel) = SigmaKernel::parse(name) else {
                return Response::error(format!(
                    "unknown kernel {name:?} (expected \"f64\", \"f32\", or \"i8\")"
                ));
            };
            options = options.with_kernel(kernel);
        }
        let votes = req.votes.map_or(self.config.votes, |v| v as usize);

        let engine = ThetisEngine::with_informativeness(
            self.graph,
            &state.lake,
            &*self.sim,
            state.inform.clone(),
        );
        // Always-on summary trace: a bounded handful of events per request
        // (phases, degradation rungs, epoch pins — never per-table streams),
        // so the retainer has the full trace of a request that only turned
        // out slow at the end. The fault-hit delta around the search is the
        // promotion signal for injected chaos.
        let query_id = self.metrics.next_query_id(spec);
        let trace = QueryTrace::summary(query_id);
        let faults_before = self.metrics.faults_fired();
        let result = engine.search_prefiltered_shared(
            &query,
            options,
            state.lsei.as_ref(),
            votes,
            cache,
            &trace,
        );
        let fault_fired = self.metrics.faults_fired() > faults_before;

        let ranked = result
            .ranked
            .iter()
            .map(|&(tid, score)| Hit {
                table: tid.0 as u64,
                name: state.lake.table(tid).name.clone(),
                score,
                score_bits: score.to_bits(),
            })
            .collect();
        let micros = started.elapsed().as_micros() as u64;
        if thetis_obs::enabled() {
            OBS_LATENCY.observe_nanos(micros * 1_000);
        }
        let reasons = result.stats.degraded_reason.labels();
        if result.stats.degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let promoted = self.metrics.observe_search(
            query_id,
            "search",
            micros * 1_000,
            result.stats.lake_epoch,
            &reasons,
            result.stats.timings.sigma_cached,
            result.stats.timings.sigma_computed,
            fault_fired,
            &trace,
        );
        if result.stats.degraded || fault_fired {
            self.log_trouble(|| {
                format!(
                    "thetis-serve trouble: event=degraded op=search \
                     query_id={query_id:#018x} latency_us={micros} \
                     reasons={} promoted={}",
                    if reasons.is_empty() {
                        "fault".to_string()
                    } else {
                        reasons.join("+")
                    },
                    promoted.unwrap_or("no"),
                )
            });
        }
        Response {
            status: "ok".into(),
            epoch: Some(result.stats.lake_epoch),
            ranked: Some(ranked),
            degraded: Some(result.stats.degraded),
            degraded_reason: Some(reasons.iter().map(|s| s.to_string()).collect()),
            sigma_hit_rate: Some(result.stats.sigma_hit_rate()),
            candidates: Some(result.stats.candidates as u64),
            tables_scored: Some(result.stats.tables_scored as u64),
            micros: Some(micros),
            query_id: Some(query_id),
            ..Response::default()
        }
    }

    fn handle_add_table(&self, req: &Request) -> Response {
        let Some(name) = req.name.as_deref() else {
            return Response::error("add_table needs a \"name\" field");
        };
        let Some(csv) = req.csv.as_deref() else {
            return Response::error("add_table needs a \"csv\" field");
        };
        let mut table =
            match thetis_datalake::csv::read_csv(name, std::io::Cursor::new(csv.as_bytes())) {
                Ok(t) => t,
                Err(e) => return Response::error(format!("cannot parse csv: {e}")),
            };
        ExactLabelLinker::new(self.graph).link_table(&mut table);
        self.commit(vec![Mutation::Add(table)])
    }

    fn handle_remove_table(&self, req: &Request) -> Response {
        let Some(name) = req.name.as_deref() else {
            return Response::error("remove_table needs a \"name\" field");
        };
        // Resolve against the current snapshot under the mutate lock so the
        // id cannot go stale between lookup and commit.
        let _mutating = self.mutate.lock().unwrap_or_else(|e| e.into_inner());
        let lake = self.epochs.pin();
        let Some(id) = lake
            .iter()
            .find(|&(id, t)| !lake.is_removed(id) && t.name == name)
            .map(|(id, _)| id)
        else {
            return Response::error(format!("no table named {name:?} in the lake"));
        };
        self.commit_locked(vec![Mutation::Remove(id)])
    }

    /// Commits a mutation batch and republishes the derived state.
    fn commit(&self, batch: Vec<Mutation>) -> Response {
        let _mutating = self.mutate.lock().unwrap_or_else(|e| e.into_inner());
        self.commit_locked(batch)
    }

    fn commit_locked(&self, batch: Vec<Mutation>) -> Response {
        if self.draining.load(Ordering::Acquire) {
            return Response::error("server is draining; mutation rejected");
        }
        // Delta-maintain the LSEI: replay the batch on a clone of the
        // previous epoch's index instead of rebuilding it over the whole
        // lake. Pre-commit context is captured first — Add ids are assigned
        // sequentially from the snapshot length, and Remove/Relink need the
        // outgoing table content to drive de-indexing — because the
        // snapshot advances once `commit` publishes.
        let prev = self.state.read().unwrap_or_else(|e| e.into_inner()).clone();
        let mut lsei = prev.lsei.clone();
        if let Some(lsei) = lsei.as_mut() {
            let pre = self.epochs.pin();
            let mut next_id = pre.len();
            for m in &batch {
                match m {
                    Mutation::Add(table) => {
                        let id = TableId::from_index(next_id);
                        next_id += 1;
                        lsei.insert_table(id, table);
                    }
                    Mutation::Remove(id) => lsei.remove_table(*id, pre.table(*id)),
                    Mutation::Relink(id, new) => lsei.relink_table(*id, pre.table(*id), new),
                }
            }
        }
        // WRITE-AHEAD: the whole batch is journaled and fsync'd *before*
        // the commit publishes, one record per mutation carrying the
        // epoch it will produce. A journal failure (I/O or injected
        // `wal.append`/`wal.fsync` fault) fails the mutation closed: the
        // journal rolled itself back, nothing publishes, the client sees
        // an error — an epoch a client ever observed is always on disk.
        let n_mutations = batch.len() as u64;
        if let Some(dur) = &self.durability {
            let pre_epoch = self.epochs.epoch();
            let records: Vec<WalRecord> = batch
                .iter()
                .enumerate()
                .map(|(i, m)| WalRecord {
                    epoch: pre_epoch + i as u64 + 1,
                    mutation: m.clone(),
                })
                .collect();
            let mut dur = dur.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = dur.wal.append_batch(&records) {
                self.log_trouble(|| {
                    format!("thetis-serve trouble: event=wal_append_failed error={e:?}")
                });
                return Response::error(format!("mutation not journaled (lake unchanged): {e}"));
            }
            self.wal_appends.fetch_add(n_mutations, Ordering::Relaxed);
        }
        let epoch = self.epochs.commit(batch);
        let lake = self.epochs.pin();
        if let Some(lsei) = lsei.as_mut() {
            // Each incremental op bumped the LSEI epoch once, matching the
            // lake's per-mutation bump, but re-anchor to the published
            // epoch so the pair can never drift.
            lsei.set_epoch(lake.epoch());
        }
        let inform = Informativeness::from_lake(&lake);
        let state = EpochState { lake, inform, lsei };
        *self.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(state);
        self.metrics.observe_mutation();
        if thetis_obs::enabled() {
            OBS_MUTATIONS.inc();
        }
        self.maybe_checkpoint(n_mutations);
        // The shared memo is invalidated lazily: the next search pinning
        // the new epoch evicts it through `for_epoch`.
        Response {
            status: "ok".into(),
            epoch: Some(epoch),
            ..Response::default()
        }
    }

    /// Checkpoint policy, evaluated after every commit (mutate lock
    /// held): every N journaled mutations, or when the last checkpoint is
    /// older than the configured interval.
    fn maybe_checkpoint(&self, n_mutations: u64) {
        if self.durability.is_none() {
            return;
        }
        let since = self
            .mutations_since_checkpoint
            .fetch_add(n_mutations, Ordering::Relaxed)
            + n_mutations;
        let due_count = self.config.checkpoint_every > 0 && since >= self.config.checkpoint_every;
        let interval_ns = self.config.checkpoint_interval.as_nanos() as u64;
        let age_ns = self
            .config
            .clock
            .now_ns()
            .saturating_sub(self.checkpoint_ns.load(Ordering::Relaxed));
        let due_age = interval_ns > 0 && age_ns >= interval_ns;
        if due_count || due_age {
            let _ = self.checkpoint("periodic");
        }
    }

    /// Takes a durable checkpoint of the *published* snapshot and rotates
    /// the journal. Failure is contained — the mutation that triggered it
    /// already committed and is journaled; an unrotated journal only
    /// costs replay time at next boot — but it is counted, logged, and
    /// degrades the health verdict until a checkpoint succeeds again.
    ///
    /// Caller must hold the mutate lock (checkpoint and commit must not
    /// interleave); the serving path does, [`Server::drain`] takes it.
    fn checkpoint(&self, cause: &str) -> Result<u64, String> {
        let Some(dur) = &self.durability else {
            return Err("no WAL configured".into());
        };
        let lake = self.epochs.pin();
        let mut dur = dur.lock().unwrap_or_else(|e| e.into_inner());
        match thetis_datalake::write_checkpoint(&lake, &dur.checkpoint) {
            Ok(()) => {
                // A crash between the rename above and this rotation is
                // safe: replay skips records the checkpoint already has.
                if let Err(e) = dur.wal.rotate() {
                    self.log_trouble(|| {
                        format!("thetis-serve trouble: event=wal_rotate_failed error={e:?}")
                    });
                }
                self.checkpoints.fetch_add(1, Ordering::Relaxed);
                self.checkpoint_failures.store(0, Ordering::Relaxed);
                self.mutations_since_checkpoint.store(0, Ordering::Relaxed);
                self.checkpoint_epoch.store(lake.epoch(), Ordering::Relaxed);
                self.checkpoint_ns
                    .store(self.config.clock.now_ns(), Ordering::Relaxed);
                Ok(lake.epoch())
            }
            Err(e) => {
                self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                self.log_trouble(|| {
                    format!(
                        "thetis-serve trouble: event=checkpoint_failed cause={cause} error={e:?}"
                    )
                });
                Err(e)
            }
        }
    }

    /// Whether [`Server::drain`] has started: no new searches or
    /// mutations are admitted.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Graceful drain (idempotent): stop admitting, wait for in-flight
    /// searches up to [`ServerConfig::drain_deadline`], then take a final
    /// checkpoint and rotate the journal. The accept loop runs this after
    /// shutdown, so [`RunningServer::join`]/[`RunningServer::shutdown`]
    /// return only once the final checkpoint is durable; a `kill -9`
    /// skips it by construction and recovery falls back to the journal.
    pub fn drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        let deadline = Instant::now() + self.config.drain_deadline;
        while self.inflight.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(dur) = &self.durability {
            let _mutating = self.mutate.lock().unwrap_or_else(|e| e.into_inner());
            // Skip the write when it would change nothing: no mutations
            // since the last checkpoint and the checkpoint file exists.
            let dirty = self.mutations_since_checkpoint.load(Ordering::Relaxed) > 0
                || !dur
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .checkpoint
                    .exists();
            if dirty {
                let _ = self.checkpoint("shutdown");
            }
        }
    }
}

/// Parses a `"e1,e2;f1,f2"` spec against the KG label index, returning the
/// query plus the mentions that resolved to nothing (the caller decides
/// whether an entirely-unresolved query is an error).
pub fn parse_query_spec(spec: &str, graph: &KnowledgeGraph) -> (Query, Vec<String>) {
    let mut tuples = Vec::new();
    let mut unknown = Vec::new();
    for tuple_spec in spec.split(';') {
        let mut tuple = Vec::new();
        for mention in tuple_spec.split(',') {
            let mention = mention.trim();
            if mention.is_empty() {
                continue;
            }
            match graph.entity_by_label(mention) {
                Some(e) => tuple.push(e),
                None => unknown.push(mention.to_string()),
            }
        }
        if !tuple.is_empty() {
            tuples.push(tuple);
        }
    }
    (Query::new(tuples), unknown)
}

/// A server bound to its socket with the accept loop running.
pub struct RunningServer {
    server: Arc<Server>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    metrics_writer: Option<std::thread::JoinHandle<()>>,
}

impl RunningServer {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying server (stats, in-process mutation, shutdown).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Signals shutdown and waits for the accept loop to exit. Open
    /// connections finish their current request and close on client EOF.
    pub fn shutdown(mut self) {
        self.server.request_shutdown();
        self.reap();
    }

    /// Blocks until the accept loop exits (a `shutdown` request arrived).
    pub fn join(mut self) {
        self.reap();
    }

    fn reap(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.server.request_shutdown();
        self.reap();
    }
}

/// Binds the server's configured address and starts the accept loop on a
/// background thread. One thread per connection; each connection handles
/// line-delimited JSON requests until EOF.
pub fn serve(server: Arc<Server>) -> std::io::Result<RunningServer> {
    let listener = TcpListener::bind(&server.config.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking accept so the loop can observe the shutdown flag
    // without a sentinel connection.
    listener.set_nonblocking(true)?;
    let accept_server = Arc::clone(&server);
    let acceptor = std::thread::Builder::new()
        .name("thetis-serve-accept".into())
        .spawn(move || {
            loop {
                if accept_server.shutdown_requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_server = Arc::clone(&accept_server);
                        let _ = std::thread::Builder::new()
                            .name("thetis-serve-conn".into())
                            .spawn(move || handle_connection(conn_server, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            // `shutdown` is a graceful drain: stop admitting, let
            // in-flight requests finish up to the drain deadline, land
            // the final checkpoint — all before `join`/`shutdown`
            // return, so the process can exit the moment they do.
            accept_server.drain();
        })?;
    let metrics_writer = match server.config.metrics_out.clone() {
        Some(path) => {
            let writer_server = Arc::clone(&server);
            Some(
                std::thread::Builder::new()
                    .name("thetis-serve-metrics".into())
                    .spawn(move || metrics_writer_loop(writer_server, path))?,
            )
        }
        None => None,
    };
    Ok(RunningServer {
        server,
        addr,
        acceptor: Some(acceptor),
        metrics_writer,
    })
}

/// Writes the windowed JSON snapshot (and a Prometheus text rendering of
/// the global registry alongside it, same stem with a `.prom` extension)
/// every [`ServerConfig::metrics_interval`], plus one final write at
/// shutdown so the last snapshot always survives the process.
fn metrics_writer_loop(server: Arc<Server>, path: PathBuf) {
    let write_once = |server: &Server| {
        let snap = server.metrics_snapshot();
        if let Ok(json) = serde_json::to_string_pretty(&snap) {
            write_atomically(&path, json.as_bytes());
        }
        let prom = thetis_obs::snapshot().render_text();
        write_atomically(&path.with_extension("prom"), prom.as_bytes());
    };
    let interval = server
        .config
        .metrics_interval
        .max(Duration::from_millis(100));
    let mut last = Instant::now();
    write_once(&server);
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
        if last.elapsed() >= interval {
            write_once(&server);
            last = Instant::now();
        }
    }
    write_once(&server);
}

/// Write-to-temp-then-rename so a scraper never reads a torn file.
fn write_atomically(path: &std::path::Path, bytes: &[u8]) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, bytes).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// One connection: read a line, answer a line, until EOF or I/O error. A
/// malformed line gets an `error` response instead of killing the
/// connection — clients pipelining requests keep their line alignment.
fn handle_connection(server: Arc<Server>, stream: TcpStream) {
    stream.set_nonblocking(false).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match serde_json::from_str::<Request>(&line) {
            Ok(req) => server.handle(&req),
            Err(e) => {
                server.errors.fetch_add(1, Ordering::Relaxed);
                if thetis_obs::enabled() {
                    OBS_ERRORS.inc();
                }
                Response::error(format!("bad request: {e}"))
            }
        };
        let json = serde_json::to_string(&resp).unwrap_or_else(|_| {
            "{\"status\":\"error\",\"error\":\"response serialization failed\"}".into()
        });
        if writer
            .write_all(json.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
