//! The wire protocol: line-delimited JSON, one request per line, one
//! response line back.
//!
//! Requests are a single flat object so clients in any language can speak
//! it with a string template. Every field except the operation's required
//! ones is optional; unknown fields are ignored. Scores travel twice: as a
//! plain `score` for humans and as `score_bits` (the IEEE-754 bit pattern
//! of the `f64`) for exact comparison — JSON float round-trips are not
//! guaranteed bit-exact, the bit pattern is.
//!
//! ```text
//! {"query":"Ron Santo,Chicago Cubs","k":5,"deadline_ms":50}
//! {"op":"stats"}
//! {"op":"add_table","name":"t9","csv":"player\nRon Santo\n"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```

use serde::{Deserialize, Serialize};

/// One client request. `op` defaults to `"search"` when absent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// `"search"` (default), `"stats"`, `"metrics"`, `"health"`,
    /// `"add_table"`, `"remove_table"`, `"ping"`, or `"shutdown"`.
    pub op: Option<String>,
    /// Entity-tuple query spec, `','` separating entities and `';'`
    /// tuples — the same syntax as `thetis-cli --query`.
    pub query: Option<String>,
    /// Results to return (default: the server's configured k).
    pub k: Option<u64>,
    /// Per-request wall-clock scoring budget in milliseconds, mapped onto
    /// [`SearchOptions::with_deadline`](thetis_core::SearchOptions): on
    /// expiry the response carries the best-so-far top-k with
    /// `degraded: true` and `"deadline"` among the reasons.
    pub deadline_ms: Option<u64>,
    /// LSEI voting threshold override (default: the server's).
    pub votes: Option<u64>,
    /// (`add_table`/`remove_table`) table name.
    pub name: Option<String>,
    /// (`add_table`) inline CSV content of the table to ingest.
    pub csv: Option<String>,
    /// σ kernel for this search: `"f64"` (bit-exact reference, the
    /// default), `"f32"`, or `"i8"` (quantized slabs). Unknown names are
    /// rejected with `status: "error"`.
    pub kernel: Option<String>,
    /// Test hook: hold the request for this long *after* pinning its lake
    /// snapshot and before scoring, while it still occupies an in-flight
    /// slot. Rejected unless the server was built with
    /// [`ServerConfig::allow_debug`](crate::ServerConfig).
    pub debug_hold_ms: Option<u64>,
}

impl Request {
    /// A plain search request for `query`.
    pub fn search(query: &str) -> Self {
        Self {
            query: Some(query.to_string()),
            ..Self::default()
        }
    }

    /// A bare operation request (`"stats"`, `"ping"`, `"shutdown"`).
    pub fn op(op: &str) -> Self {
        Self {
            op: Some(op.to_string()),
            ..Self::default()
        }
    }

    /// The effective operation (`"search"` when unset).
    pub fn operation(&self) -> &str {
        self.op.as_deref().unwrap_or("search")
    }
}

/// One ranked hit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hit {
    /// Table id in the pinned snapshot.
    pub table: u64,
    /// Table name.
    pub name: String,
    /// SemRel score (human-readable; may lose bits in JSON).
    pub score: f64,
    /// `score.to_bits()` — compare rankings with this, not with `score`.
    pub score_bits: u64,
}

/// Counters of a running server, returned by the `stats` op.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Currently published lake epoch.
    pub epoch: u64,
    /// Search requests admitted so far.
    pub requests: u64,
    /// Search requests shed with `overloaded`.
    pub shed: u64,
    /// Requests answered with `status: "error"`.
    pub errors: u64,
    /// Searches currently executing.
    pub inflight: u64,
    /// Resident entries in the shared σ memo.
    pub cache_entries: u64,
    /// σ evaluations the shared memo performed (misses), cumulative.
    pub cache_computed: u64,
    /// σ lookups the shared memo served (hits), cumulative.
    pub cache_served: u64,
    /// Cumulative hit rate of the shared memo.
    pub cache_hit_rate: f64,
    /// Shard wipes forced by the memo's capacity bound.
    pub cache_evictions: u64,
    /// Epoch advances that evicted the shared memo.
    pub cache_invalidations: u64,
    /// Searches answered degraded (deadline / panic / LSEI fallback).
    #[serde(default)]
    pub degraded: u64,
    /// Traces filed in the in-memory reservoir.
    #[serde(default)]
    pub traces_retained: u64,
    /// Traces promoted to the slow-query log.
    #[serde(default)]
    pub traces_promoted: u64,
    /// Heap bytes held by quantized σ slabs (0 until a quantized kernel
    /// builds one).
    #[serde(default)]
    pub sigma_slab_bytes: u64,
    /// Whether mutations are journaled to a write-ahead log.
    #[serde(default)]
    pub wal_enabled: bool,
    /// Mutation records durably appended since boot.
    #[serde(default)]
    pub wal_records: u64,
    /// Current journal size, bytes (header included).
    #[serde(default)]
    pub wal_bytes: u64,
    /// Journal records replayed at boot recovery.
    #[serde(default)]
    pub wal_replayed: u64,
    /// Torn/corrupt journal bytes truncated at boot recovery.
    #[serde(default)]
    pub wal_torn_bytes: u64,
    /// Checkpoints durably written since boot.
    #[serde(default)]
    pub checkpoints: u64,
    /// Consecutive checkpoint failures since the last success (0 when
    /// healthy; any non-zero value degrades the health verdict).
    #[serde(default)]
    pub checkpoint_failures: u64,
    /// Epoch of the last durable checkpoint (the boot epoch until one is
    /// written).
    #[serde(default)]
    pub checkpoint_epoch: u64,
    /// Mutations journaled since the last durable checkpoint (what a
    /// crash right now would have to replay).
    #[serde(default)]
    pub mutations_since_checkpoint: u64,
}

/// The exemplar attached to one latency bucket: the most recent concrete
/// observation that landed there.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExemplarInfo {
    /// The observed latency, nanoseconds.
    pub value_ns: u64,
    /// The query that produced it (resolvable in the trace reservoir and
    /// the slow-query log).
    pub query_id: u64,
    /// The lake epoch it ran against.
    pub lake_epoch: u64,
}

/// One windowed latency bucket.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Upper bound in nanoseconds; `None` is the +Inf overflow bucket.
    pub le_ns: Option<u64>,
    /// Observations in this bucket over the window (non-cumulative).
    pub count: u64,
    /// The bucket's most recent observation, if any ever landed here.
    pub exemplar: Option<ExemplarInfo>,
}

/// One entry of the "slowest recent queries" table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SlowQuery {
    /// The query id (matches `Response::query_id` and the slowlog).
    pub query_id: u64,
    /// The protocol operation.
    pub op: String,
    /// Server-side latency, microseconds.
    pub latency_us: u64,
    /// Lake epoch the request was pinned to.
    pub epoch: u64,
    /// Degradation rungs that fired.
    pub reasons: Vec<String>,
    /// Why the trace was promoted to the slowlog, if it was.
    pub promoted_by: Option<String>,
}

/// The windowed metrics snapshot returned by the `metrics` op.
///
/// `window_*` fields cover the rolling window (how the server is doing
/// *now*); `total_*` fields are cumulative since boot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Width of the rolling window, seconds.
    pub window_secs: f64,
    /// Admitted searches per second over the window.
    pub qps: f64,
    /// Windowed p50 latency, microseconds (`None` when the window is empty).
    pub p50_us: Option<u64>,
    /// Windowed p99 latency, microseconds (`None` when the window is empty).
    pub p99_us: Option<u64>,
    /// Searches admitted inside the window.
    pub window_requests: u64,
    /// Searches shed inside the window.
    pub window_shed: u64,
    /// Error responses inside the window.
    pub window_errors: u64,
    /// Degraded searches inside the window.
    pub window_degraded: u64,
    /// Mutations committed inside the window.
    pub window_mutations: u64,
    /// Fraction of σ lookups served by the shared memo inside the window.
    pub window_sigma_hit_rate: f64,
    /// Traces filed in the reservoir since boot.
    pub traces_retained: u64,
    /// Traces promoted to the slow-query log since boot.
    pub traces_promoted: u64,
    /// Windowed latency buckets with exemplars, finite bounds first,
    /// +Inf last.
    pub buckets: Vec<BucketSnapshot>,
    /// Slowest retained queries, slowest first.
    pub slowest: Vec<SlowQuery>,
    /// Searches currently executing.
    pub inflight: u64,
    /// The admission-control bound.
    pub max_inflight: u64,
    /// Cumulative admitted searches.
    pub total_requests: u64,
    /// Cumulative shed searches.
    pub total_shed: u64,
    /// Cumulative error responses.
    pub total_errors: u64,
    /// Cumulative degraded searches.
    pub total_degraded: u64,
    /// Cumulative shared-memo hit rate.
    pub cache_hit_rate: f64,
    /// Currently published lake epoch.
    pub epoch: u64,
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Whether mutations are journaled to a write-ahead log.
    #[serde(default)]
    pub wal_enabled: bool,
    /// Seconds since the last durable checkpoint (since boot until one is
    /// written; 0.0 when the WAL is off). Scrape this: a growing age with
    /// a busy mutation window means recovery time is growing too.
    #[serde(default)]
    pub checkpoint_age_s: f64,
    /// Mutations journaled since the last durable checkpoint.
    #[serde(default)]
    pub mutations_since_checkpoint: u64,
    /// Checkpoints durably written since boot.
    #[serde(default)]
    pub checkpoints: u64,
    /// Consecutive checkpoint failures since the last success.
    #[serde(default)]
    pub checkpoint_failures: u64,
}

/// The `health` op's verdict.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthStatus {
    /// `"ready"`, `"degraded"`, or `"overloaded"` (worst rung wins).
    pub status: String,
    /// Human-readable causes, empty when ready.
    pub reasons: Vec<String>,
    /// Searches currently executing.
    pub inflight: u64,
    /// The admission-control bound.
    pub max_inflight: u64,
    /// Admitted searches per second over the window.
    pub qps: f64,
    /// Currently published lake epoch.
    pub epoch: u64,
}

/// One server response line.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// `"ok"`, `"overloaded"`, or `"error"`.
    pub status: String,
    /// Human-readable cause when `status` is not `"ok"`.
    pub error: Option<String>,
    /// Lake epoch this response was computed against: for searches, the
    /// epoch of the *pinned* snapshot (stable even if writers publish
    /// newer epochs mid-flight); for mutations, the newly published epoch.
    pub epoch: Option<u64>,
    /// Ranked results, best first (searches only).
    pub ranked: Option<Vec<Hit>>,
    /// Whether the ranking is partial (deadline, panic, LSEI fallback).
    pub degraded: Option<bool>,
    /// Which degradation rungs fired (`"deadline"`, `"worker_panic"`,
    /// `"lsei_fallback"`); empty on a healthy run.
    pub degraded_reason: Option<Vec<String>>,
    /// Fraction of this search's σ lookups served by the shared memo.
    pub sigma_hit_rate: Option<f64>,
    /// Candidate tables after prefiltering.
    pub candidates: Option<u64>,
    /// Tables actually scored.
    pub tables_scored: Option<u64>,
    /// Server-side wall time of the request, microseconds.
    pub micros: Option<u64>,
    /// Server counters (`stats` op only).
    pub stats: Option<ServerStats>,
    /// The server-assigned query id of this search: the key into the
    /// trace reservoir, the slow-query log, and exemplars.
    pub query_id: Option<u64>,
    /// Windowed metrics (`metrics` op only).
    pub metrics: Option<MetricsSnapshot>,
    /// Health verdict (`health` op only).
    pub health: Option<HealthStatus>,
}

impl Response {
    /// An `"error"` response with a cause.
    pub fn error(cause: impl Into<String>) -> Self {
        Self {
            status: "error".into(),
            error: Some(cause.into()),
            ..Self::default()
        }
    }

    /// The `"overloaded"` load-shedding response.
    pub fn overloaded() -> Self {
        Self {
            status: "overloaded".into(),
            error: Some("server saturated; retry with backoff".into()),
            ..Self::default()
        }
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_and_default_missing_fields() {
        let parsed: Request = serde_json::from_str(r#"{"query":"a,b;c","k":5}"#).unwrap();
        assert_eq!(parsed.operation(), "search");
        assert_eq!(parsed.query.as_deref(), Some("a,b;c"));
        assert_eq!(parsed.k, Some(5));
        assert_eq!(parsed.deadline_ms, None);

        let op: Request = serde_json::from_str(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(op.operation(), "stats");

        let json = serde_json::to_string(&Request::search("x,y")).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.query.as_deref(), Some("x,y"));
    }

    #[test]
    fn score_bits_survive_json_even_when_the_float_does_not() {
        // A score with a full mantissa, at the mercy of float
        // formatting: the bit pattern is the contract, not the decimal.
        let score = std::f64::consts::FRAC_1_PI;
        let hit = Hit {
            table: 3,
            name: "t".into(),
            score,
            score_bits: score.to_bits(),
        };
        let json = serde_json::to_string(&hit).unwrap();
        let back: Hit = serde_json::from_str(&json).unwrap();
        assert_eq!(back.score_bits, score.to_bits());
        assert_eq!(f64::from_bits(back.score_bits), score);
    }

    #[test]
    fn responses_roundtrip() {
        let resp = Response {
            status: "ok".into(),
            epoch: Some(7),
            ranked: Some(vec![Hit {
                table: 0,
                name: "players".into(),
                score: 1.0,
                score_bits: 1.0f64.to_bits(),
            }]),
            degraded: Some(false),
            degraded_reason: Some(vec![]),
            sigma_hit_rate: Some(0.5),
            candidates: Some(4),
            tables_scored: Some(4),
            micros: Some(1234),
            ..Response::default()
        };
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.epoch, Some(7));
        assert_eq!(back.ranked.unwrap()[0].name, "players");
        assert!(Response::overloaded().status == "overloaded");
        assert!(!Response::error("boom").is_ok());
    }
}
