//! The wire protocol: line-delimited JSON, one request per line, one
//! response line back.
//!
//! Requests are a single flat object so clients in any language can speak
//! it with a string template. Every field except the operation's required
//! ones is optional; unknown fields are ignored. Scores travel twice: as a
//! plain `score` for humans and as `score_bits` (the IEEE-754 bit pattern
//! of the `f64`) for exact comparison — JSON float round-trips are not
//! guaranteed bit-exact, the bit pattern is.
//!
//! ```text
//! {"query":"Ron Santo,Chicago Cubs","k":5,"deadline_ms":50}
//! {"op":"stats"}
//! {"op":"add_table","name":"t9","csv":"player\nRon Santo\n"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```

use serde::{Deserialize, Serialize};

/// One client request. `op` defaults to `"search"` when absent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Request {
    /// `"search"` (default), `"stats"`, `"add_table"`, `"remove_table"`,
    /// `"ping"`, or `"shutdown"`.
    pub op: Option<String>,
    /// Entity-tuple query spec, `','` separating entities and `';'`
    /// tuples — the same syntax as `thetis-cli --query`.
    pub query: Option<String>,
    /// Results to return (default: the server's configured k).
    pub k: Option<u64>,
    /// Per-request wall-clock scoring budget in milliseconds, mapped onto
    /// [`SearchOptions::with_deadline`](thetis_core::SearchOptions): on
    /// expiry the response carries the best-so-far top-k with
    /// `degraded: true` and `"deadline"` among the reasons.
    pub deadline_ms: Option<u64>,
    /// LSEI voting threshold override (default: the server's).
    pub votes: Option<u64>,
    /// (`add_table`/`remove_table`) table name.
    pub name: Option<String>,
    /// (`add_table`) inline CSV content of the table to ingest.
    pub csv: Option<String>,
    /// Test hook: hold the request for this long *after* pinning its lake
    /// snapshot and before scoring, while it still occupies an in-flight
    /// slot. Rejected unless the server was built with
    /// [`ServerConfig::allow_debug`](crate::ServerConfig).
    pub debug_hold_ms: Option<u64>,
}

impl Request {
    /// A plain search request for `query`.
    pub fn search(query: &str) -> Self {
        Self {
            query: Some(query.to_string()),
            ..Self::default()
        }
    }

    /// A bare operation request (`"stats"`, `"ping"`, `"shutdown"`).
    pub fn op(op: &str) -> Self {
        Self {
            op: Some(op.to_string()),
            ..Self::default()
        }
    }

    /// The effective operation (`"search"` when unset).
    pub fn operation(&self) -> &str {
        self.op.as_deref().unwrap_or("search")
    }
}

/// One ranked hit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hit {
    /// Table id in the pinned snapshot.
    pub table: u64,
    /// Table name.
    pub name: String,
    /// SemRel score (human-readable; may lose bits in JSON).
    pub score: f64,
    /// `score.to_bits()` — compare rankings with this, not with `score`.
    pub score_bits: u64,
}

/// Counters of a running server, returned by the `stats` op.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Currently published lake epoch.
    pub epoch: u64,
    /// Search requests admitted so far.
    pub requests: u64,
    /// Search requests shed with `overloaded`.
    pub shed: u64,
    /// Requests answered with `status: "error"`.
    pub errors: u64,
    /// Searches currently executing.
    pub inflight: u64,
    /// Resident entries in the shared σ memo.
    pub cache_entries: u64,
    /// σ evaluations the shared memo performed (misses), cumulative.
    pub cache_computed: u64,
    /// σ lookups the shared memo served (hits), cumulative.
    pub cache_served: u64,
    /// Cumulative hit rate of the shared memo.
    pub cache_hit_rate: f64,
    /// Shard wipes forced by the memo's capacity bound.
    pub cache_evictions: u64,
    /// Epoch advances that evicted the shared memo.
    pub cache_invalidations: u64,
}

/// One server response line.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Response {
    /// `"ok"`, `"overloaded"`, or `"error"`.
    pub status: String,
    /// Human-readable cause when `status` is not `"ok"`.
    pub error: Option<String>,
    /// Lake epoch this response was computed against: for searches, the
    /// epoch of the *pinned* snapshot (stable even if writers publish
    /// newer epochs mid-flight); for mutations, the newly published epoch.
    pub epoch: Option<u64>,
    /// Ranked results, best first (searches only).
    pub ranked: Option<Vec<Hit>>,
    /// Whether the ranking is partial (deadline, panic, LSEI fallback).
    pub degraded: Option<bool>,
    /// Which degradation rungs fired (`"deadline"`, `"worker_panic"`,
    /// `"lsei_fallback"`); empty on a healthy run.
    pub degraded_reason: Option<Vec<String>>,
    /// Fraction of this search's σ lookups served by the shared memo.
    pub sigma_hit_rate: Option<f64>,
    /// Candidate tables after prefiltering.
    pub candidates: Option<u64>,
    /// Tables actually scored.
    pub tables_scored: Option<u64>,
    /// Server-side wall time of the request, microseconds.
    pub micros: Option<u64>,
    /// Server counters (`stats` op only).
    pub stats: Option<ServerStats>,
}

impl Response {
    /// An `"error"` response with a cause.
    pub fn error(cause: impl Into<String>) -> Self {
        Self {
            status: "error".into(),
            error: Some(cause.into()),
            ..Self::default()
        }
    }

    /// The `"overloaded"` load-shedding response.
    pub fn overloaded() -> Self {
        Self {
            status: "overloaded".into(),
            error: Some("server saturated; retry with backoff".into()),
            ..Self::default()
        }
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_and_default_missing_fields() {
        let parsed: Request = serde_json::from_str(r#"{"query":"a,b;c","k":5}"#).unwrap();
        assert_eq!(parsed.operation(), "search");
        assert_eq!(parsed.query.as_deref(), Some("a,b;c"));
        assert_eq!(parsed.k, Some(5));
        assert_eq!(parsed.deadline_ms, None);

        let op: Request = serde_json::from_str(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(op.operation(), "stats");

        let json = serde_json::to_string(&Request::search("x,y")).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.query.as_deref(), Some("x,y"));
    }

    #[test]
    fn score_bits_survive_json_even_when_the_float_does_not() {
        // A score with a full mantissa, at the mercy of float
        // formatting: the bit pattern is the contract, not the decimal.
        let score = std::f64::consts::FRAC_1_PI;
        let hit = Hit {
            table: 3,
            name: "t".into(),
            score,
            score_bits: score.to_bits(),
        };
        let json = serde_json::to_string(&hit).unwrap();
        let back: Hit = serde_json::from_str(&json).unwrap();
        assert_eq!(back.score_bits, score.to_bits());
        assert_eq!(f64::from_bits(back.score_bits), score);
    }

    #[test]
    fn responses_roundtrip() {
        let resp = Response {
            status: "ok".into(),
            epoch: Some(7),
            ranked: Some(vec![Hit {
                table: 0,
                name: "players".into(),
                score: 1.0,
                score_bits: 1.0f64.to_bits(),
            }]),
            degraded: Some(false),
            degraded_reason: Some(vec![]),
            sigma_hit_rate: Some(0.5),
            candidates: Some(4),
            tables_scored: Some(4),
            micros: Some(1234),
            ..Response::default()
        };
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.epoch, Some(7));
        assert_eq!(back.ranked.unwrap()[0].name, "players");
        assert!(Response::overloaded().status == "overloaded");
        assert!(!Response::error("boom").is_ok());
    }
}
