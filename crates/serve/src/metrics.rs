//! The server's observability core: rolling request metrics, exemplars,
//! and the tail-sampling trace retainer.
//!
//! One [`ServeMetrics`] lives inside the [`Server`](crate::Server); every
//! finished search flows through [`ServeMetrics::observe_search`], which
//! does four things in one place so they cannot drift apart:
//!
//! 1. reads the *pre-request* rolling-window p99 (the promotion threshold
//!    must not be inflated by the very request it judges),
//! 2. records the request into the windowed latency histogram (with its
//!    exemplar) and the windowed rate counters,
//! 3. asks the [`PromotionPolicy`] whether the trace escalates to the
//!    slow-query log (relative slowness, degradation, or a fired fault),
//! 4. files the trace in the bounded in-memory reservoir either way.
//!
//! Everything reads time through one injected [`WindowClock`], so the e2e
//! tests drive "p99 decays after load stops" by advancing a manual clock —
//! no sleeps, no flaky thresholds.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use thetis_obs::rolling::{RollingCounter, RollingHistogram, WindowClock};
use thetis_obs::{faults, PromotionPolicy, QueryTrace, RetainedTrace, TraceRetainer};

use crate::protocol::{BucketSnapshot, ExemplarInfo, MetricsSnapshot, SlowQuery};

/// FNV-1a over bytes — the same stable hash the CLI uses for trace ids.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Rolling-window metrics + trace retention for one server instance.
pub struct ServeMetrics {
    clock: WindowClock,
    latency: RollingHistogram,
    requests: RollingCounter,
    shed: RollingCounter,
    errors: RollingCounter,
    degraded: RollingCounter,
    mutations: RollingCounter,
    sigma_served: RollingCounter,
    sigma_computed: RollingCounter,
    retainer: TraceRetainer,
    policy: PromotionPolicy,
    seq: AtomicU64,
}

impl ServeMetrics {
    /// Builds the metrics core. `slowlog` (when set) is opened in append
    /// mode immediately so a bad path fails at construction, not on the
    /// first slow query.
    pub fn new(
        clock: WindowClock,
        window_slots: usize,
        slot_duration: Duration,
        trace_capacity: usize,
        slowlog: Option<&Path>,
        policy: PromotionPolicy,
    ) -> std::io::Result<Self> {
        let retainer = match slowlog {
            Some(path) => TraceRetainer::with_slowlog(trace_capacity, path)?,
            None => TraceRetainer::new(trace_capacity),
        };
        let roller = |name| RollingCounter::new(name, clock.clone(), window_slots, slot_duration);
        Ok(Self {
            latency: RollingHistogram::new(
                "serve.windowed_latency",
                clock.clone(),
                window_slots,
                slot_duration,
            ),
            requests: roller("serve.windowed_requests"),
            shed: roller("serve.windowed_shed"),
            errors: roller("serve.windowed_errors"),
            degraded: roller("serve.windowed_degraded"),
            mutations: roller("serve.windowed_mutations"),
            sigma_served: roller("serve.windowed_sigma_served"),
            sigma_computed: roller("serve.windowed_sigma_computed"),
            retainer,
            policy,
            seq: AtomicU64::new(0),
            clock,
        })
    }

    /// The shared clock (advance it in tests to decay windows).
    pub fn clock(&self) -> &WindowClock {
        &self.clock
    }

    /// The trace reservoir.
    pub fn retainer(&self) -> &TraceRetainer {
        &self.retainer
    }

    /// The windowed latency histogram (exemplars included).
    pub fn latency(&self) -> &RollingHistogram {
        &self.latency
    }

    /// A process-unique query id for a request: a hash of the query spec
    /// (so the same query is recognizable across requests) mixed with a
    /// sequence number (so two in-flight copies of the same spec stay
    /// distinguishable in the slowlog).
    pub fn next_query_id(&self, spec: &str) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        fnv1a_bytes(spec.as_bytes()) ^ seq.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Total fires across the armed fault plan's failpoints — diff two
    /// readings around a request to know whether a fault fired *in* it.
    pub fn faults_fired(&self) -> u64 {
        faults::total_fired()
    }

    /// Records a shed request.
    pub fn observe_shed(&self) {
        self.shed.add(1);
    }

    /// Records an error response.
    pub fn observe_error(&self) {
        self.errors.add(1);
    }

    /// Records a committed mutation.
    pub fn observe_mutation(&self) {
        self.mutations.add(1);
    }

    /// Records a finished search and files its trace; returns the
    /// promotion cause when the trace went to the slow-query log.
    #[allow(clippy::too_many_arguments)]
    pub fn observe_search(
        &self,
        query_id: u64,
        op: &str,
        latency_ns: u64,
        lake_epoch: u64,
        reasons: &[&'static str],
        sigma_served: u64,
        sigma_computed: u64,
        fault_fired: bool,
        trace: &QueryTrace,
    ) -> Option<&'static str> {
        // Threshold first: judge this request against the window *before*
        // it joins it.
        let window = self.latency.windowed();
        let promoted_by = self.policy.reason(
            latency_ns,
            window.percentile(0.99),
            window.snapshot.count,
            !reasons.is_empty(),
            fault_fired,
        );
        self.requests.add(1);
        self.latency.observe(latency_ns, query_id, lake_epoch);
        if !reasons.is_empty() {
            self.degraded.add(1);
        }
        self.sigma_served.add(sigma_served);
        self.sigma_computed.add(sigma_computed);
        self.retainer.record(RetainedTrace {
            query_id,
            op: op.to_string(),
            latency_ns,
            lake_epoch,
            reasons: reasons.iter().map(|s| s.to_string()).collect(),
            promoted_by: promoted_by.map(String::from),
            events: trace.events(),
        });
        promoted_by
    }

    /// The windowed portion of a metrics snapshot (the server layers its
    /// cumulative counters and cache stats on top).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let window = self.latency.windowed();
        let exemplars = self.latency.exemplars();
        let buckets = window
            .snapshot
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| BucketSnapshot {
                le_ns: thetis_obs::HISTOGRAM_BOUNDS_NS.get(i).copied(),
                count,
                exemplar: exemplars
                    .get(i)
                    .and_then(|e| e.as_ref())
                    .map(|e| ExemplarInfo {
                        value_ns: e.value_ns,
                        query_id: e.query_id,
                        lake_epoch: e.lake_epoch,
                    }),
            })
            .collect();
        let served = self.sigma_served.windowed();
        let computed = self.sigma_computed.windowed();
        let slowest = self
            .retainer
            .slowest(5)
            .into_iter()
            .map(|t| SlowQuery {
                query_id: t.query_id,
                op: t.op.clone(),
                latency_us: t.latency_ns / 1_000,
                epoch: t.lake_epoch,
                reasons: t.reasons.clone(),
                promoted_by: t.promoted_by.clone(),
            })
            .collect();
        MetricsSnapshot {
            window_secs: window.window_secs,
            qps: self.requests.rate(),
            p50_us: window.percentile(0.50).map(|ns| ns / 1_000),
            p99_us: window.percentile(0.99).map(|ns| ns / 1_000),
            window_requests: self.requests.windowed(),
            window_shed: self.shed.windowed(),
            window_errors: self.errors.windowed(),
            window_degraded: self.degraded.windowed(),
            window_mutations: self.mutations.windowed(),
            window_sigma_hit_rate: if served + computed == 0 {
                0.0
            } else {
                served as f64 / (served + computed) as f64
            },
            traces_retained: self.retainer.recorded(),
            traces_promoted: self.retainer.promoted(),
            buckets,
            slowest,
            ..MetricsSnapshot::default()
        }
    }

    /// Windowed degraded-request count (for health rungs).
    pub fn window_degraded(&self) -> u64 {
        self.degraded.windowed()
    }

    /// Windowed shed-request count (for health rungs).
    pub fn window_shed(&self) -> u64 {
        self.shed.windowed()
    }
}
