//! Fixed-width text tables for experiment output.

/// Renders a text table with aligned columns, a header rule, and a title —
/// the output format of the `reproduce` binary.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row arity mismatch in report table");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            "Title",
            &["method", "ndcg"],
            &[
                vec!["STST".into(), "0.61".into()],
                vec!["BM25text".into(), "0.60".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Title");
        assert!(lines[1].contains("method") && lines[1].contains("ndcg"));
        assert!(lines[3].trim_start().starts_with("STST"));
        // All data lines equally wide.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn ragged_rows_panic() {
        format_table("t", &["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_pct(0.885), "88.5%");
    }
}
