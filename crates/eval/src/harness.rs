//! The experiment harness: run a method over a query set, collect quality
//! and runtime.
//!
//! A *method* is any closure from a benchmark query to a ranked table list;
//! the harness is agnostic to whether that list came from Thetis, BM25, a
//! baseline, or a combination.

use std::time::Instant;

use serde::Serialize;
use thetis_corpus::{BenchQuery, GroundTruth};
use thetis_datalake::TableId;

use crate::metrics::{mean, ndcg_at_k, quartiles, recall_at_k};

/// Per-query measurements.
#[derive(Debug, Clone, Serialize)]
pub struct PerQuery {
    /// Query index.
    pub query: usize,
    /// NDCG@10.
    pub ndcg10: f64,
    /// Recall@100.
    pub recall100: f64,
    /// Recall@200.
    pub recall200: f64,
    /// Wall time of the method call, seconds.
    pub seconds: f64,
    /// The retrieved ranking (for set-difference analyses).
    #[serde(skip)]
    pub retrieved: Vec<TableId>,
}

/// Aggregate report for one method over one query set.
///
/// ```
/// use thetis_corpus::{Benchmark, BenchmarkConfig, BenchmarkKind};
/// use thetis_eval::MethodReport;
///
/// let mut cfg = BenchmarkConfig::tiny(BenchmarkKind::Wt2015);
/// cfg.scale = 0.0002;
/// cfg.n_queries = 2;
/// let bench = Benchmark::build(&cfg);
/// // A "method" is any closure producing a ranked table list.
/// let report = MethodReport::run("noop", &bench.queries1, &bench.gt1, |_q| vec![]);
/// assert_eq!(report.mean_ndcg10, 0.0);
/// assert_eq!(report.per_query.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct MethodReport {
    /// Method name.
    pub name: String,
    /// Mean NDCG@10.
    pub mean_ndcg10: f64,
    /// `(q1, median, q3)` of NDCG@10 — the boxplot of Figure 4.
    pub ndcg10_quartiles: (f64, f64, f64),
    /// Mean recall@100.
    pub mean_recall100: f64,
    /// Median recall@100.
    pub median_recall100: f64,
    /// Mean recall@200.
    pub mean_recall200: f64,
    /// Median recall@200.
    pub median_recall200: f64,
    /// Mean wall time per query, seconds.
    pub mean_seconds: f64,
    /// Per-query detail.
    pub per_query: Vec<PerQuery>,
}

impl MethodReport {
    /// Runs `method` over every query, evaluating against `gt`.
    ///
    /// `method` must return a ranking of at least 200 tables for the
    /// recall@200 number to be meaningful; shorter rankings are evaluated
    /// as-is.
    pub fn run(
        name: &str,
        queries: &[BenchQuery],
        gt: &GroundTruth,
        mut method: impl FnMut(&BenchQuery) -> Vec<TableId>,
    ) -> Self {
        let mut per_query = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let start = Instant::now();
            let retrieved = method(q);
            let seconds = start.elapsed().as_secs_f64();
            per_query.push(PerQuery {
                query: qi,
                ndcg10: ndcg_at_k(gt, qi, &retrieved, 10),
                recall100: recall_at_k(gt, qi, &retrieved, 100),
                recall200: recall_at_k(gt, qi, &retrieved, 200),
                seconds,
                retrieved,
            });
        }
        Self::aggregate(name, per_query)
    }

    /// Builds a report from already-computed per-query measurements.
    pub fn aggregate(name: &str, per_query: Vec<PerQuery>) -> Self {
        let ndcg: Vec<f64> = per_query.iter().map(|p| p.ndcg10).collect();
        let r100: Vec<f64> = per_query.iter().map(|p| p.recall100).collect();
        let r200: Vec<f64> = per_query.iter().map(|p| p.recall200).collect();
        let secs: Vec<f64> = per_query.iter().map(|p| p.seconds).collect();
        Self {
            name: name.to_string(),
            mean_ndcg10: mean(&ndcg),
            ndcg10_quartiles: quartiles(&ndcg),
            mean_recall100: mean(&r100),
            median_recall100: crate::metrics::median(&r100),
            mean_recall200: mean(&r200),
            median_recall200: crate::metrics::median(&r200),
            mean_seconds: mean(&secs),
            per_query,
        }
    }

    /// Re-evaluates this report's retrieved lists after applying a
    /// transformation (e.g. merging with another method's lists).
    pub fn transformed(
        &self,
        name: &str,
        gt: &GroundTruth,
        mut f: impl FnMut(usize, &[TableId]) -> Vec<TableId>,
    ) -> Self {
        let per_query = self
            .per_query
            .iter()
            .map(|p| {
                let retrieved = f(p.query, &p.retrieved);
                PerQuery {
                    query: p.query,
                    ndcg10: ndcg_at_k(gt, p.query, &retrieved, 10),
                    recall100: recall_at_k(gt, p.query, &retrieved, 100),
                    recall200: recall_at_k(gt, p.query, &retrieved, 200),
                    seconds: p.seconds,
                    retrieved,
                }
            })
            .collect();
        Self::aggregate(name, per_query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_corpus::TableMeta;
    use thetis_kg::{KgGeneratorConfig, SyntheticKg, TopicId};

    fn fixture() -> (Vec<BenchQuery>, GroundTruth) {
        let kg = SyntheticKg::generate(&KgGeneratorConfig {
            domains: 2,
            topics_per_domain: 2,
            entities_per_kind: 4,
            ..KgGeneratorConfig::default()
        });
        let meta = vec![
            TableMeta {
                primary_topic: TopicId(0),
                topic_fractions: vec![(TopicId(0), 1.0)],
            },
            TableMeta {
                // Topic 2 is in the other domain: gain 0 for topic-0 queries.
                primary_topic: TopicId(2),
                topic_fractions: vec![(TopicId(2), 1.0)],
            },
        ];
        let queries = vec![BenchQuery {
            id: 0,
            topic: TopicId(0),
            tuples: vec![vec![kg.topics[0].entities_by_kind[0][0]]],
        }];
        let gt = GroundTruth::compute(
            &kg,
            &thetis_datalake::DataLake::from_tables(
                (0..meta.len())
                    .map(|i| thetis_datalake::Table::new(format!("t{i}"), vec!["c".into()]))
                    .collect(),
            ),
            &meta,
            &queries,
        );
        (queries, gt)
    }

    #[test]
    fn perfect_method_scores_one() {
        let (queries, gt) = fixture();
        let report = MethodReport::run("oracle", &queries, &gt, |_| vec![TableId(0)]);
        assert!((report.mean_ndcg10 - 1.0).abs() < 1e-12);
        assert!((report.mean_recall100 - 1.0).abs() < 1e-12);
        assert!(report.mean_seconds >= 0.0);
    }

    #[test]
    fn useless_method_scores_zero() {
        let (queries, gt) = fixture();
        let report = MethodReport::run("noise", &queries, &gt, |_| vec![TableId(1)]);
        assert_eq!(report.mean_ndcg10, 0.0);
        assert_eq!(report.mean_recall200, 0.0);
    }

    #[test]
    fn transformed_reevaluates() {
        let (queries, gt) = fixture();
        let bad = MethodReport::run("noise", &queries, &gt, |_| vec![TableId(1)]);
        let fixed = bad.transformed("fixed", &gt, |_, _| vec![TableId(0)]);
        assert!((fixed.mean_ndcg10 - 1.0).abs() < 1e-12);
        assert_eq!(fixed.name, "fixed");
    }
}
