//! Evaluation metrics and the experiment harness for the Thetis
//! reproduction (§7).
//!
//! * [`metrics`] — NDCG@k against graded gains, recall@k against the top-k
//!   ground-truth tables (the paper's definitions), result-set difference,
//!   and distribution statistics (mean/median/quartiles, as boxplotted in
//!   Figures 4–5);
//! * [`combine`] — the STSTC/STSEC combination: top 50% of two methods'
//!   result lists merged (§7.2);
//! * [`harness`] — runs a search method over a benchmark's query set and
//!   collects quality plus runtime;
//! * [`report`] — fixed-width text tables for the `reproduce` binary.

pub mod combine;
pub mod harness;
pub mod metrics;
pub mod report;

pub use combine::merge_top_half;
pub use harness::{MethodReport, PerQuery};
pub use metrics::{mean, median, ndcg_at_k, quartiles, recall_at_k, result_set_difference};
