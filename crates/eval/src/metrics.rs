//! Ranking metrics.

use thetis_corpus::GroundTruth;
use thetis_datalake::TableId;

/// NDCG@k of a retrieved ranking against graded gains.
///
/// `DCG = Σ_{i<k} gain_i / log2(i + 2)`; the ideal DCG uses the ground
/// truth's own descending gain order. Returns 0 when the query has no
/// relevant tables.
pub fn ndcg_at_k(gt: &GroundTruth, q: usize, retrieved: &[TableId], k: usize) -> f64 {
    let judgments = gt.judgments(q);
    if judgments.is_empty() {
        return 0.0;
    }
    let dcg: f64 = retrieved
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &t)| gt.gain(q, t) / ((i + 2) as f64).log2())
        .sum();
    let idcg: f64 = judgments
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &(_, g))| g / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Recall@k as the paper computes it: the fraction of the top-k *ground
/// truth* tables that appear among the k retrieved tables.
pub fn recall_at_k(gt: &GroundTruth, q: usize, retrieved: &[TableId], k: usize) -> f64 {
    let relevant = gt.top_k(q, k);
    if relevant.is_empty() {
        return 0.0;
    }
    let retrieved_set: std::collections::HashSet<TableId> =
        retrieved.iter().take(k).copied().collect();
    let hits = relevant
        .iter()
        .filter(|t| retrieved_set.contains(t))
        .count();
    hits as f64 / relevant.len() as f64
}

/// `|A \ B|` over the first `k` of each list — the paper's "result set
/// difference" showing Thetis and BM25 retrieve disjoint tables.
pub fn result_set_difference(a: &[TableId], b: &[TableId], k: usize) -> usize {
    let b_set: std::collections::HashSet<TableId> = b.iter().take(k).copied().collect();
    a.iter().take(k).filter(|t| !b_set.contains(t)).count()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (0 for empty input).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// `(q1, median, q3)` — the boxplot statistics of Figures 4–5.
pub fn quartiles(xs: &[f64]) -> (f64, f64, f64) {
    (quantile(xs, 0.25), quantile(xs, 0.5), quantile(xs, 0.75))
}

fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thetis_corpus::{BenchQuery, GroundTruth, TableMeta};
    use thetis_kg::{KgGeneratorConfig, SyntheticKg, TopicId};

    fn gt() -> GroundTruth {
        let kg = SyntheticKg::generate(&KgGeneratorConfig {
            domains: 2,
            topics_per_domain: 2,
            entities_per_kind: 4,
            ..KgGeneratorConfig::default()
        });
        let meta = vec![
            TableMeta {
                primary_topic: TopicId(0),
                topic_fractions: vec![(TopicId(0), 1.0)],
            },
            TableMeta {
                primary_topic: TopicId(0),
                topic_fractions: vec![(TopicId(0), 0.5), (TopicId(2), 0.5)],
            },
            TableMeta {
                primary_topic: TopicId(2),
                topic_fractions: vec![(TopicId(2), 1.0)],
            },
        ];
        let queries = vec![BenchQuery {
            id: 0,
            topic: TopicId(0),
            tuples: vec![vec![kg.topics[0].entities_by_kind[0][0]]],
        }];
        GroundTruth::compute(
            &kg,
            &thetis_datalake::DataLake::from_tables(
                (0..meta.len())
                    .map(|i| thetis_datalake::Table::new(format!("t{i}"), vec!["c".into()]))
                    .collect(),
            ),
            &meta,
            &queries,
        )
    }

    #[test]
    fn perfect_ranking_has_ndcg_one() {
        let gt = gt();
        // GT order: table 0 (gain 2), table 1 (gain 1).
        let retrieved = vec![TableId(0), TableId(1)];
        assert!((ndcg_at_k(&gt, 0, &retrieved, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swapped_ranking_has_lower_ndcg() {
        let gt = gt();
        let swapped = vec![TableId(1), TableId(0)];
        let v = ndcg_at_k(&gt, 0, &swapped, 10);
        assert!(v < 1.0 && v > 0.5, "got {v}");
    }

    #[test]
    fn irrelevant_ranking_has_ndcg_zero() {
        let gt = gt();
        assert_eq!(ndcg_at_k(&gt, 0, &[TableId(2)], 10), 0.0);
        assert_eq!(ndcg_at_k(&gt, 0, &[], 10), 0.0);
    }

    #[test]
    fn recall_counts_relevant_hits() {
        let gt = gt();
        // GT top-10 = {0, 1}.
        assert_eq!(recall_at_k(&gt, 0, &[TableId(0)], 10), 0.5);
        assert_eq!(recall_at_k(&gt, 0, &[TableId(0), TableId(1)], 10), 1.0);
        assert_eq!(recall_at_k(&gt, 0, &[TableId(2)], 10), 0.0);
    }

    #[test]
    fn recall_at_one_considers_only_first() {
        let gt = gt();
        // GT top-1 = {0}; retrieved top-1 = {1} → 0.
        assert_eq!(recall_at_k(&gt, 0, &[TableId(1), TableId(0)], 1), 0.0);
    }

    #[test]
    fn result_set_difference_counts_exclusives() {
        let a = vec![TableId(1), TableId(2), TableId(3)];
        let b = vec![TableId(3), TableId(4)];
        assert_eq!(result_set_difference(&a, &b, 10), 2);
        assert_eq!(result_set_difference(&b, &a, 10), 1);
        assert_eq!(result_set_difference(&a, &a, 10), 0);
    }

    #[test]
    fn stats_are_standard() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        let (q1, m, q3) = quartiles(&xs);
        assert!((q1 - 1.75).abs() < 1e-12);
        assert_eq!(m, 2.5);
        assert!((q3 - 3.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }
}
