//! Method combination (§7.2): STSTC / STSEC.
//!
//! The paper's best quality comes from *complementing* keyword search with
//! semantic search: "We extracted the top 50% from each method, merged the
//! two result sets, and measured recall." The merge interleaves the two
//! halves so neither method dominates the head of the combined ranking,
//! then back-fills with leftovers up to `k`.

use thetis_datalake::TableId;

/// Merges the top halves of two rankings into one list of at most `k`
/// tables: alternate `a[0], b[0], a[1], b[1], ...` over each method's top
/// `k/2`, dedup, then fill with the remaining entries of `a` then `b`.
pub fn merge_top_half(a: &[TableId], b: &[TableId], k: usize) -> Vec<TableId> {
    let half = k / 2;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    let push =
        |t: TableId, out: &mut Vec<TableId>, seen: &mut std::collections::HashSet<TableId>| {
            if out.len() < k && seen.insert(t) {
                out.push(t);
            }
        };
    for i in 0..half {
        if let Some(&t) = a.get(i) {
            push(t, &mut out, &mut seen);
        }
        if let Some(&t) = b.get(i) {
            push(t, &mut out, &mut seen);
        }
    }
    // Back-fill from the tails when the union of halves is short.
    for &t in a.iter().skip(half).chain(b.iter().skip(half)) {
        if out.len() >= k {
            break;
        }
        push(t, &mut out, &mut seen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<TableId> {
        v.iter().copied().map(TableId).collect()
    }

    #[test]
    fn disjoint_lists_interleave() {
        let merged = merge_top_half(&ids(&[1, 2, 3, 4]), &ids(&[5, 6, 7, 8]), 4);
        assert_eq!(merged, ids(&[1, 5, 2, 6]));
    }

    #[test]
    fn duplicates_are_removed() {
        let merged = merge_top_half(&ids(&[1, 2]), &ids(&[2, 3]), 4);
        assert_eq!(merged, ids(&[1, 2, 3]));
    }

    #[test]
    fn backfill_extends_short_halves() {
        let merged = merge_top_half(&ids(&[1, 2, 3, 4]), &ids(&[1, 2, 3, 4]), 4);
        // halves identical → union of halves is {1,2}; backfill adds 3, 4.
        assert_eq!(merged, ids(&[1, 2, 3, 4]));
    }

    #[test]
    fn result_never_exceeds_k() {
        let merged = merge_top_half(&ids(&[1, 2, 3]), &ids(&[4, 5, 6]), 4);
        assert_eq!(merged.len(), 4);
    }

    #[test]
    fn empty_inputs_yield_empty() {
        assert!(merge_top_half(&[], &[], 10).is_empty());
        assert_eq!(merge_top_half(&ids(&[1]), &[], 10), ids(&[1]));
    }
}
