#!/usr/bin/env sh
# Prints a query string that is guaranteed to resolve against the demo
# lake. The demo CLI suggests one on stderr when a query misses (`Try
# --query "..."`); we probe with a label that can never link and scrape
# the suggestion. Used by the chaos, bench-smoke, and serve-smoke CI
# jobs so the extraction logic lives in exactly one place.
set -eu

suggested=$(cargo run --release --locked -p thetis --bin thetis-cli -- \
  --demo --query zzz 2>&1 |
  sed -n 's/.*Try --query "\([^"]*\)".*/\1/p')
test -n "$suggested"
printf '%s\n' "$suggested"
